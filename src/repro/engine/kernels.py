"""Execution kernels shared by host and device placement.

Two granularities over the same query semantics:

* :class:`PageKernel` — the original page-at-a-time kernel: decode the
  needed columns of one page, apply the predicate, optionally probe the
  join hash table, then project rows or fold aggregates.
  :meth:`PageKernel.process_page` remains as the compatibility shim the
  pruning/top-N paths and the differential tests exercise.
* :class:`BatchKernel` — the hot path: one I/O unit (up to 32 pages) per
  invocation. Columns decode across the whole unit in one NumPy pass per
  column (:class:`repro.storage.UnitColumns`), the predicate evaluates over
  the unit's concatenated predicate columns *first*, and the remaining
  projection/probe/aggregate columns are decoded only for pages with at
  least one surviving row (late materialization). Counters, virtual time,
  and results are bit-identical to driving :class:`PageKernel` page by
  page — aggregation partials are still folded per page segment in page
  order, so even float accumulation order matches.

Both count every priced operation; the caller (host executor or Smart SSD
program) charges the counters to the right CPU and moves the right bytes
over the right links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from repro.errors import PlanError
from repro.engine.expressions import (
    And,
    CaseWhen,
    Col,
    Compare,
    Const,
    EvalContext,
    Expr,
    LikePrefix,
    Or,
    _BinaryArith,
)
from repro.engine.plans import AggSpec, JoinSpec, Query
from repro.model.counters import WorkCounters
from repro.storage.layout import Layout, decode_columns, touched_bytes
from repro.storage.page import PageHeader
from repro.storage.schema import Schema
from repro.storage.unitdecode import UnitColumns

#: Estimated per-entry bookkeeping bytes of a hash table (bucket pointers,
#: entry headers) — used for memory grants and cache-residency decisions.
HASH_ENTRY_OVERHEAD = 24


def batch_exact(expr: Optional[Expr]) -> bool:
    """True when unit-wide evaluation charges exactly the per-page sums.

    The short-circuit combinators (``And``/``Or``/``CaseWhen``) clamp the
    active-row count they pass onward with ``min``/``max``. Evaluated at
    *full* active (active == row count) the clamp is exact and additive
    across pages: ``min(n, nonzero) == nonzero`` and nonzero counts sum.
    Evaluated at an already-reduced active (the right side of an ``And``,
    a ``CASE`` branch) the clamp can bind differently per page than over
    the concatenated unit, so a combinator in such a position makes
    unit-wide charging inexact — the batch kernel then falls back to its
    per-page path to preserve bit-identical counters.

    ``and_all``'s left-nested conjunction chains, and every expression the
    committed workloads use, are batch-exact.
    """
    return _exact_at_full(expr) if expr is not None else True


def _exact_at_full(expr: Expr) -> bool:
    """Exactness when ``expr`` is evaluated with active == row count."""
    if isinstance(expr, (And, Or)):
        # The left side keeps full active; the right side receives the
        # (additive) survivor count, where only clamp-free trees are safe.
        return _exact_at_full(expr.left) and _clamp_free(expr.right)
    if isinstance(expr, CaseWhen):
        return (_exact_at_full(expr.condition) and _clamp_free(expr.then)
                and _clamp_free(expr.otherwise))
    if isinstance(expr, (Compare, _BinaryArith)):
        return _exact_at_full(expr.left) and _exact_at_full(expr.right)
    if isinstance(expr, LikePrefix):
        return _exact_at_full(expr.column)
    # Col/Const charge linearly in active — always additive. Unknown node
    # types are conservatively assumed to clamp.
    return isinstance(expr, (Col, Const))


def _clamp_free(expr: Expr) -> bool:
    """True when the subtree contains no min/max-clamping combinator."""
    if isinstance(expr, (And, Or, CaseWhen)):
        return False
    if isinstance(expr, (Compare, _BinaryArith)):
        return _clamp_free(expr.left) and _clamp_free(expr.right)
    if isinstance(expr, LikePrefix):
        return _clamp_free(expr.column)
    return isinstance(expr, (Col, Const))


class HashTable:
    """An in-memory join table: unique keys mapping to payload columns.

    Implemented as sorted keys + aligned payload arrays; probes are binary
    searches, which is deterministic and vectorizes, while the *cost model*
    still prices each probe as a hash lookup.
    """

    def __init__(self, keys: np.ndarray, payload: dict[str, np.ndarray]):
        order = np.argsort(keys, kind="stable")
        self.keys = np.ascontiguousarray(keys[order])
        if len(np.unique(self.keys)) != len(self.keys):
            raise PlanError("hash-join build keys must be unique")
        self.payload = {name: np.ascontiguousarray(values[order])
                        for name, values in payload.items()}

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        """Estimated resident size (entries + payload + overhead)."""
        payload_nbytes = sum(v.nbytes for v in self.payload.values())
        return (self.keys.nbytes + payload_nbytes
                + HASH_ENTRY_OVERHEAD * len(self.keys))

    def probe(self, probe_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Look up ``probe_keys``; returns (match_mask, build_indices).

        ``build_indices`` is only meaningful where ``match_mask`` is True.
        """
        if len(self.keys) == 0:
            return (np.zeros(len(probe_keys), dtype=bool),
                    np.zeros(len(probe_keys), dtype=np.int64))
        positions = np.searchsorted(self.keys, probe_keys)
        positions = np.clip(positions, 0, len(self.keys) - 1)
        match = self.keys[positions] == probe_keys
        return match, positions


class BuildCollector:
    """Streaming accumulator for the join build side.

    Build pages arrive one I/O unit at a time (the device cannot buffer a
    multi-GB dimension table); :meth:`consume` decodes and counts each batch,
    :meth:`finish` assembles the final :class:`HashTable`.
    """

    def __init__(self, schema: Schema, spec: JoinSpec):
        self.schema = schema
        self.spec = spec
        self._key_chunks: list[np.ndarray] = []
        self._payload_chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in spec.payload}
        self.needed = [spec.build_key, *spec.payload]
        if spec.build_predicate is not None:
            for name in sorted(spec.build_predicate.columns()):
                if name not in self.needed:
                    self.needed.append(name)
        pred = spec.build_predicate
        self._pred_names = set(pred.columns()) if pred is not None else set()
        self._batch_exact = batch_exact(pred)

    def consume(self, pages: Sequence[bytes], counters: WorkCounters,
                layout: Layout) -> int:
        """Decode a batch of build pages; returns page bytes the CPU touched.

        Decodes the whole batch in one pass per column; with a build
        predicate, only its columns decode eagerly and the key/payload
        columns late-materialize for pages with at least one kept row.
        Counters and the assembled table are identical to per-page decode.
        """
        if not pages:
            return 0
        if not self._batch_exact:
            return self._consume_pages(pages, counters, layout)
        unit = UnitColumns(self.schema, pages)
        n = unit.total_rows
        counters.pages_parsed += unit.page_count
        if layout is Layout.NSM:
            counters.nsm_tuples_parsed += n
        touched = touched_bytes(layout, self.schema, self.needed, n)
        pred = self.spec.build_predicate
        eager = [name for name in self.needed
                 if pred is None or name in self._pred_names]
        late = [name for name in self.needed if name not in eager]
        columns = unit.decode(eager)
        ctx = EvalContext(columns, n, counters, layout)
        if pred is not None:
            mask = pred.evaluate(ctx, n)
            keep = np.nonzero(mask)[0]
        else:
            keep = np.arange(n)
        gathered = {name: columns[name][keep] for name in eager}
        if late:
            late_cols, gather_idx, elided = _late_materialize(unit, keep,
                                                              late)
            counters.decode_bytes_elided += elided
            for name in late:
                gathered[name] = late_cols[name][gather_idx]
        counters.decoded_bytes += unit.decoded_nbytes
        # Key + payload extraction for every inserted row.
        ctx.charge_extract(len(keep) * len(self.needed))
        counters.hash_builds += len(keep)
        self._key_chunks.append(gathered[self.spec.build_key])
        for name in self.spec.payload:
            self._payload_chunks[name].append(gathered[name])
        return touched

    def _consume_pages(self, pages: Sequence[bytes], counters: WorkCounters,
                       layout: Layout) -> int:
        """Page-at-a-time path (build predicates batch evaluation cannot
        charge exactly — see :func:`batch_exact`)."""
        touched = 0
        for page in pages:
            header = PageHeader.decode(page)
            n = header.tuple_count
            counters.pages_parsed += 1
            if layout is Layout.NSM:
                counters.nsm_tuples_parsed += n
            touched += touched_bytes(layout, self.schema, self.needed, n)
            columns = decode_columns(self.schema, page, self.needed)
            ctx = EvalContext(columns, n, counters, layout)
            if self.spec.build_predicate is not None:
                mask = self.spec.build_predicate.evaluate(ctx, n)
                keep = np.nonzero(mask)[0]
            else:
                keep = np.arange(n)
            # Key + payload extraction for every inserted row.
            ctx.charge_extract(len(keep) * len(self.needed))
            counters.hash_builds += len(keep)
            self._key_chunks.append(columns[self.spec.build_key][keep])
            for name in self.spec.payload:
                self._payload_chunks[name].append(columns[name][keep])
        return touched

    def finish(self) -> HashTable:
        """Assemble the hash table from everything consumed."""
        if self._key_chunks:
            keys = np.concatenate(self._key_chunks)
            payload = {name: np.concatenate(chunks)
                       for name, chunks in self._payload_chunks.items()}
        else:
            keys = np.empty(0, dtype=np.int64)
            payload = {name: np.empty(0) for name in self.spec.payload}
        return HashTable(keys, payload)


def build_hash_table(schema: Schema, pages: Sequence[bytes], spec: JoinSpec,
                     counters: WorkCounters, layout: Layout) -> HashTable:
    """Decode build-side pages and construct the join table, counting work."""
    collector = BuildCollector(schema, spec)
    collector.consume(pages, counters, layout)
    return collector.finish()


def top_n_indexes(values: np.ndarray, n: int,
                  descending: bool) -> np.ndarray:
    """Indexes of the top-``n`` values, returned in original row order.

    Stable for ascending order; both placements (and the final merge) use
    this same helper, so results are deterministic and placement-agnostic.
    """
    order = np.argsort(values, kind="stable")
    if descending:
        order = order[::-1]
    return np.sort(order[:n])


def distinct_indexes(columns: dict[str, np.ndarray],
                     names: Sequence[str]) -> np.ndarray:
    """Indexes of the first occurrence of each distinct row, in row order.

    Shared by the page kernels (page-local dedupe), the merge step, and
    the reference executor, so DISTINCT results are identical everywhere.
    """
    n = len(next(iter(columns.values()))) if columns else 0
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if len(names) == 1:
        keys = columns[names[0]]
    else:
        key_dtype = np.dtype([(name, columns[name].dtype)
                              for name in names])
        keys = np.empty(n, dtype=key_dtype)
        for name in names:
            keys[name] = columns[name]
    __, first = np.unique(keys, return_index=True)
    return np.sort(first)


def order_and_limit_indexes(values: np.ndarray, limit: Optional[int],
                            descending: bool) -> np.ndarray:
    """Final presentation order: sorted by value, truncated to ``limit``.

    Shared by the executor's merge step and the reference executor so the
    row order (including tie handling) is identical everywhere.
    """
    if limit is not None:
        keep = top_n_indexes(values, limit, descending)
        order = np.argsort(values[keep], kind="stable")
        if descending:
            order = order[::-1]
        return keep[order]
    order = np.argsort(values, kind="stable")
    if descending:
        order = order[::-1]
    return order


class TopNState:
    """Device-resident bounded accumulator for ORDER BY ... LIMIT.

    The scan program offers each page's (already page-locally truncated)
    surviving rows together with their *ordinals* — global row positions in
    extent scan order — and the state keeps only candidates that can still
    make the final top ``limit``. Selection happens under the strict total
    order (value, ordinal), exactly the order :func:`top_n_indexes` induces
    over the host's concatenated chunk stream, so keeping the best ``n`` is
    associative and idempotent: folding page-by-page on the device yields
    the same surviving set as the host's single global pass, bit for bit,
    regardless of the order units complete in.
    """

    #: Compact once the candidate pool exceeds ``max(4 * limit, this)``.
    MIN_COMPACT_THRESHOLD = 256

    def __init__(self, order_by: str, limit: int, descending: bool):
        self.order_by = order_by
        self.limit = limit
        self.descending = descending
        self._ordinals: list[np.ndarray] = []
        self._chunks: list[dict[str, np.ndarray]] = []
        self._count = 0
        self._compact_at = max(4 * limit, self.MIN_COMPACT_THRESHOLD)

    @property
    def candidate_count(self) -> int:
        """Rows currently buffered (bounded by the compaction threshold)."""
        return self._count

    def offer(self, ordinals: np.ndarray,
              columns: dict[str, np.ndarray]) -> None:
        """Add one page's surviving rows to the candidate pool."""
        n = len(ordinals)
        if n == 0:
            return
        self._ordinals.append(np.asarray(ordinals, dtype=np.int64))
        self._chunks.append(columns)
        self._count += n
        if self._count > self._compact_at:
            self._compact()

    def _compact(self) -> None:
        ordinals = np.concatenate(self._ordinals)
        names = list(self._chunks[0])
        columns = {name: np.concatenate([chunk[name]
                                         for chunk in self._chunks])
                   for name in names}
        # Restore scan order first: ordinals are unique, so the stable
        # argsort inside top_n_indexes then breaks value ties exactly as
        # the host's concatenated-in-page-order pass would.
        order = np.argsort(ordinals, kind="stable")
        ordinals = ordinals[order]
        columns = {name: values[order] for name, values in columns.items()}
        keep = top_n_indexes(columns[self.order_by], self.limit,
                             self.descending)
        self._ordinals = [ordinals[keep]]
        self._chunks = [{name: values[keep]
                         for name, values in columns.items()}]
        self._count = len(keep)

    def finish(self) -> Optional[dict[str, np.ndarray]]:
        """The final top-``limit`` candidates in scan order, or None when
        nothing was ever offered."""
        if not self._chunks:
            return None
        self._compact()
        return self._chunks[0]


@dataclass
class AggState:
    """Mergeable partial state of the aggregate set."""

    values: dict[str, Any] = field(default_factory=dict)
    groups: dict[Any, dict[str, Any]] = field(default_factory=dict)

    def merge(self, other: "AggState", aggs: Sequence[AggSpec]) -> None:
        """Fold another partial into this one."""
        for agg in aggs:
            self.values[agg.name] = _merge_scalar(
                agg.kind, self.values.get(agg.name),
                other.values.get(agg.name))
        for group, partial in other.groups.items():
            mine = self.groups.setdefault(group, {})
            for agg in aggs:
                mine[agg.name] = _merge_scalar(
                    agg.kind, mine.get(agg.name), partial.get(agg.name))


def _merge_scalar(kind: str, a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    if kind in ("sum", "count"):
        return a + b
    if kind == "min":
        return min(a, b)
    return max(a, b)


@dataclass
class PagePartial:
    """Output of one page's worth of kernel work."""

    row_count: int
    columns: Optional[dict[str, np.ndarray]] = None  # select queries
    agg: Optional[AggState] = None                   # aggregate queries
    counters: WorkCounters = field(default_factory=WorkCounters)
    touched_nbytes: int = 0  # page bytes the CPU actually read


class PageKernel:
    """Compiled per-page execution for one :class:`Query`."""

    def __init__(self, query: Query, schema: Schema, layout: Layout,
                 hash_table: Optional[HashTable] = None,
                 ctx_factory: type[EvalContext] = EvalContext):
        if query.join is not None and hash_table is None:
            raise PlanError("join query needs a built hash table")
        self.query = query
        self.schema = schema
        self.layout = layout
        self.hash_table = hash_table
        self.ctx_factory = ctx_factory
        self.needed_columns = query.probe_side_columns()
        for name in self.needed_columns:
            schema.column_index(name)  # validate early

    def process_page(self, page: bytes) -> PagePartial:
        """Run the kernel over one page of real bytes."""
        counters = WorkCounters()
        header = PageHeader.decode(page)
        n = header.tuple_count
        counters.pages_parsed += 1
        if self.layout is Layout.NSM:
            counters.nsm_tuples_parsed += n
        columns = decode_columns(self.schema, page, self.needed_columns,
                                 header=header)
        touched = touched_bytes(self.layout, self.schema,
                                self.needed_columns, n)
        return self._evaluate(columns, n, counters, touched)

    def process_decoded(self, columns: dict[str, np.ndarray],
                        n: int) -> PagePartial:
        """Run the kernel over columns another scan already decoded.

        The page-setup and decode work happened elsewhere (and was charged
        there); only this query's marginal work — predicates, probes,
        aggregates, outputs — lands in the returned partial's counters.
        """
        counters = WorkCounters()
        return self._evaluate(columns, n, counters, touched=0)

    def _evaluate(self, columns: dict[str, np.ndarray], n: int,
                  counters: WorkCounters, touched: int) -> PagePartial:
        ctx = self.ctx_factory(columns, n, counters, self.layout)

        # 1. Selection.
        if self.query.predicate is not None:
            mask = self.query.predicate.evaluate(ctx, n)
            survivors = np.nonzero(mask)[0]
        else:
            survivors = np.arange(n)

        filtered = {name: values[survivors]
                    for name, values in columns.items()}
        k = len(survivors)

        # 2. Hash-join probe.
        if self.query.join is not None:
            probe_keys = filtered[self.query.join.probe_key]
            ctx.charge_extract(k)
            counters.hash_probes += k
            match, positions = self.hash_table.probe(probe_keys)
            matched = np.nonzero(match)[0]
            filtered = {name: values[matched]
                        for name, values in filtered.items()}
            build_rows = positions[matched]
            for name in self.query.join.payload:
                filtered[name] = self.hash_table.payload[name][build_rows]
            k = len(matched)

        # 2b. Post-join predicate (spans probe columns + build payload).
        if self.query.post_predicate is not None:
            post_ctx = self.ctx_factory(filtered, k, counters, self.layout)
            post_mask = self.query.post_predicate.evaluate(post_ctx, k)
            keep = np.nonzero(post_mask)[0]
            filtered = {name: values[keep]
                        for name, values in filtered.items()}
            k = len(keep)

        out_ctx = self.ctx_factory(filtered, k, counters, self.layout)

        # 3a. Projection (with optional page-local top-N truncation).
        if self.query.select:
            out_columns = {}
            for name, expr in self.query.select:
                values = np.asarray(expr.evaluate(out_ctx, k))
                if values.ndim == 0:
                    values = np.full(k, values)
                out_columns[name] = values
            if self.query.distinct and k > 0:
                counters.distinct_candidates += k
                keep = distinct_indexes(out_columns,
                                        self.query.output_names())
                out_columns = {name: values[keep]
                               for name, values in out_columns.items()}
                k = len(keep)
            if self.query.limit is not None and k > 0:
                counters.topn_candidates += k
                keep = top_n_indexes(out_columns[self.query.order_by],
                                     self.query.limit,
                                     self.query.descending)
                out_columns = {name: values[keep]
                               for name, values in out_columns.items()}
                k = len(keep)
            counters.output_values += k * len(self.query.select)
            return PagePartial(row_count=k, columns=out_columns,
                               counters=counters, touched_nbytes=touched)

        # 3b. Aggregation.
        state = AggState()
        if self.query.group_by is None:
            for agg in self.query.aggregates:
                state.values[agg.name] = self._scalar_partial(
                    agg, out_ctx, k, counters)
        else:
            self._grouped_partials(state, out_ctx, k, counters)
        return PagePartial(row_count=k, agg=state, counters=counters,
                           touched_nbytes=touched)

    # -- aggregation helpers ---------------------------------------------------

    def _scalar_partial(self, agg: AggSpec, ctx: EvalContext, k: int,
                        counters: WorkCounters) -> Any:
        counters.aggregate_updates += k
        if agg.kind == "count":
            return k
        values = np.asarray(agg.expr.evaluate(ctx, k))
        if values.ndim == 0:
            values = np.full(k, values)
        if k == 0:
            return 0 if agg.kind == "sum" else None
        if agg.kind == "sum":
            acc = values.astype(np.float64) if values.dtype.kind == "f" \
                else values.astype(np.int64)
            return acc.sum().item()
        if agg.kind == "min":
            return values.min().item()
        return values.max().item()

    def _grouped_partials(self, state: AggState, ctx: EvalContext, k: int,
                          counters: WorkCounters) -> None:
        if k == 0:
            return
        names = self.query.group_by_columns
        ctx.charge_extract(k * len(names))
        if len(names) == 1:
            groups, inverse = np.unique(ctx.columns[names[0]],
                                        return_inverse=True)
            group_list = groups.tolist()
        else:
            key_dtype = np.dtype([(name, ctx.columns[name].dtype)
                                  for name in names])
            keys = np.empty(k, dtype=key_dtype)
            for name in names:
                keys[name] = ctx.columns[name]
            groups, inverse = np.unique(keys, return_inverse=True)
            group_list = [tuple(g) for g in groups.tolist()]
        for agg in self.query.aggregates:
            counters.aggregate_updates += k
            if agg.kind == "count":
                partials = np.bincount(inverse, minlength=len(groups))
            elif agg.kind == "sum":
                values = np.asarray(agg.expr.evaluate(ctx, k))
                weights = values.astype(np.float64)
                partials = np.bincount(inverse, weights=weights,
                                       minlength=len(groups))
                if values.dtype.kind in "iu":
                    partials = partials.astype(np.int64)
            else:
                values = np.asarray(agg.expr.evaluate(ctx, k))
                reducer = np.minimum if agg.kind == "min" else np.maximum
                fill = values.max() if agg.kind == "min" else values.min()
                partials = np.full(len(groups), fill, dtype=values.dtype)
                reducer.at(partials, inverse, values)
            for group, partial in zip(group_list, partials.tolist()):
                state.groups.setdefault(group, {})[agg.name] = _merge_scalar(
                    agg.kind, state.groups.get(group, {}).get(agg.name),
                    partial)


# --------------------------------------------------------------------------
# Batch (I/O-unit-at-a-time) execution
# --------------------------------------------------------------------------

def _late_materialize(unit: UnitColumns, survivors: np.ndarray,
                      names: Sequence[str],
                      page_of: Optional[np.ndarray] = None,
                      ) -> tuple[dict[str, np.ndarray], np.ndarray, int]:
    """Decode ``names`` only for pages with at least one surviving row.

    Returns ``(columns, gather, elided)``: the decoded columns (compacted
    to live pages), the indexes of ``survivors`` within that compacted row
    space, and the value bytes the skipped (fully-filtered) pages never
    materialized.
    """
    if page_of is None:
        page_of = np.searchsorted(unit.starts, survivors, side="right") - 1
    per_page = np.bincount(page_of, minlength=unit.page_count)
    live = np.nonzero(per_page)[0]
    dead_rows = unit.total_rows - int(unit.counts[live].sum())
    elided = dead_rows * unit.rows_per_tuple(names)
    columns = unit.decode(names, include=live)
    compact_starts = np.zeros(len(live) + 1, dtype=np.int64)
    np.cumsum(unit.counts[live], out=compact_starts[1:])
    position = np.searchsorted(live, page_of)
    gather = compact_starts[position] + (survivors - unit.starts[page_of])
    return columns, gather, elided


@dataclass
class UnitPartial:
    """Output of one I/O unit's worth of batch-kernel work."""

    row_count: int
    #: ``(page offset within the unit, output columns)`` chunks. One
    #: concatenated chunk per unit normally; one per page when page-local
    #: semantics (DISTINCT dedupe, top-N truncation) require it.
    chunks: list[tuple[int, dict[str, np.ndarray]]] = field(
        default_factory=list)
    touched_nbytes: int = 0  # page bytes the CPU actually read


class BatchKernel:
    """I/O-unit-at-a-time execution for one :class:`Query`.

    Drop-in replacement for driving :class:`PageKernel` over each page of a
    unit: identical results, counters, and touched bytes, with the decode
    and expression work batched across the unit's concatenated rows. The
    predicate evaluates first over just its own columns; every other column
    is then decoded only for pages with surviving rows (late
    materialization). Aggregates fold into the caller's running
    :class:`AggState` per page segment in page order, so floating-point
    accumulation order is preserved bit for bit.

    Queries whose expressions are not :func:`batch_exact` (clamping
    combinators in reduced-active positions) transparently run the
    page-at-a-time path via :attr:`page_kernel`.
    """

    def __init__(self, query: Query, schema: Schema, layout: Layout,
                 hash_table: Optional[HashTable] = None,
                 ctx_factory: type[EvalContext] = EvalContext):
        self.page_kernel = PageKernel(query, schema, layout,
                                      hash_table=hash_table,
                                      ctx_factory=ctx_factory)
        self.query = query
        self.schema = schema
        self.layout = layout
        self.hash_table = hash_table
        self.ctx_factory = ctx_factory
        self.needed_columns = self.page_kernel.needed_columns
        pred_names = (set(query.predicate.columns())
                      if query.predicate is not None else None)
        #: Columns the predicate needs (everything, without a predicate).
        self.predicate_columns = [
            name for name in self.needed_columns
            if pred_names is None or name in pred_names]
        #: Columns whose decode waits for the predicate's survivors.
        self.late_columns = [name for name in self.needed_columns
                             if name not in self.predicate_columns]
        #: DISTINCT dedupe and top-N truncation are page-local in the
        #: per-page kernel; emit per-page chunks to preserve that.
        self.per_page_output = bool(query.distinct
                                    or query.limit is not None)
        exprs = [query.predicate, query.post_predicate,
                 *(expr for __, expr in query.select),
                 *(agg.expr for agg in query.aggregates
                   if agg.expr is not None)]
        self.is_batch_exact = all(batch_exact(expr) for expr in exprs)

    # -- entry points --------------------------------------------------------

    def process_unit(self, pages: Sequence[bytes], *,
                     counters: WorkCounters,
                     agg_into: Optional[AggState] = None,
                     offsets: Optional[Sequence[int]] = None) -> UnitPartial:
        """Run the kernel over one I/O unit of real page bytes.

        ``counters`` accumulates the unit's work in place; aggregate
        queries fold into ``agg_into``. ``offsets`` labels each page with
        its original position within the unit (after any pruning).
        """
        offsets = list(range(len(pages))) if offsets is None else list(offsets)
        if not self.is_batch_exact:
            return self._unit_via_pages(pages, counters, agg_into, offsets)
        unit = UnitColumns(self.schema, pages)
        n = unit.total_rows
        counters.pages_parsed += unit.page_count
        if self.layout is Layout.NSM:
            counters.nsm_tuples_parsed += n
        touched = touched_bytes(self.layout, self.schema,
                                self.needed_columns, n)
        columns = unit.decode(self.predicate_columns)
        ctx = self.ctx_factory(columns, n, counters, self.layout)
        if self.query.predicate is not None:
            mask = self.query.predicate.evaluate(ctx, n)
            survivors = np.nonzero(mask)[0]
        else:
            survivors = np.arange(n)
        page_of = np.searchsorted(unit.starts, survivors, side="right") - 1
        filtered = {name: columns[name][survivors]
                    for name in self.predicate_columns}
        if self.late_columns:
            late, gather, elided = _late_materialize(
                unit, survivors, self.late_columns, page_of=page_of)
            counters.decode_bytes_elided += elided
            for name in self.late_columns:
                filtered[name] = late[name][gather]
        counters.decoded_bytes += unit.decoded_nbytes
        return self._finish(filtered, page_of, len(survivors),
                            unit.page_count, offsets, counters, agg_into,
                            touched)

    def process_decoded_unit(self, columns: dict[str, np.ndarray],
                             counts: Sequence[int], *,
                             counters: WorkCounters,
                             agg_into: Optional[AggState] = None,
                             offsets: Optional[Sequence[int]] = None,
                             ) -> UnitPartial:
        """Run the kernel over unit columns another scan already decoded.

        ``columns`` holds each column's values concatenated across the
        pages whose live-row counts are ``counts`` (it may contain more
        columns than this query needs — a shared scan decodes the member
        union). Decode and page-setup work was charged elsewhere; only
        this query's marginal work lands in ``counters``.
        """
        counts = np.asarray(counts, dtype=np.int64)
        page_count = len(counts)
        offsets = (list(range(page_count)) if offsets is None
                   else list(offsets))
        starts = np.zeros(page_count + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        n = int(starts[-1])
        if not self.is_batch_exact:
            return self._decoded_via_pages(columns, starts, counts,
                                           counters, agg_into, offsets)
        ctx = self.ctx_factory(columns, n, counters, self.layout)
        if self.query.predicate is not None:
            mask = self.query.predicate.evaluate(ctx, n)
            survivors = np.nonzero(mask)[0]
        else:
            survivors = np.arange(n)
        page_of = np.searchsorted(starts, survivors, side="right") - 1
        filtered = {name: columns[name][survivors]
                    for name in self.needed_columns}
        return self._finish(filtered, page_of, len(survivors), page_count,
                            offsets, counters, agg_into, touched=0)

    # -- per-page fallbacks (non-batch-exact expressions) --------------------

    def _unit_via_pages(self, pages: Sequence[bytes],
                        counters: WorkCounters,
                        agg_into: Optional[AggState],
                        offsets: Sequence[int]) -> UnitPartial:
        chunks = []
        touched = 0
        rows = 0
        for offset, page in zip(offsets, pages):
            partial = self.page_kernel.process_page(page)
            counters.add(partial.counters)
            touched += partial.touched_nbytes
            rows += partial.row_count
            if partial.columns is not None:
                chunks.append((offset, partial.columns))
            else:
                agg_into.merge(partial.agg, self.query.aggregates)
        return UnitPartial(row_count=rows, chunks=chunks,
                           touched_nbytes=touched)

    def _decoded_via_pages(self, columns: dict[str, np.ndarray],
                           starts: np.ndarray, counts: np.ndarray,
                           counters: WorkCounters,
                           agg_into: Optional[AggState],
                           offsets: Sequence[int]) -> UnitPartial:
        chunks = []
        rows = 0
        for position, offset in enumerate(offsets):
            lo, hi = int(starts[position]), int(starts[position + 1])
            page_columns = {name: values[lo:hi]
                            for name, values in columns.items()}
            partial = self.page_kernel.process_decoded(
                page_columns, int(counts[position]))
            counters.add(partial.counters)
            rows += partial.row_count
            if partial.columns is not None:
                chunks.append((offset, partial.columns))
            else:
                agg_into.merge(partial.agg, self.query.aggregates)
        return UnitPartial(row_count=rows, chunks=chunks, touched_nbytes=0)

    # -- shared tail: probe, post-predicate, project / aggregate -------------

    def _finish(self, filtered: dict[str, np.ndarray], page_of: np.ndarray,
                k: int, page_count: int, offsets: Sequence[int],
                counters: WorkCounters, agg_into: Optional[AggState],
                touched: int) -> UnitPartial:
        # Hash-join probe over the unit's concatenated survivors.
        if self.query.join is not None:
            probe_keys = filtered[self.query.join.probe_key]
            probe_ctx = self.ctx_factory(filtered, k, counters, self.layout)
            probe_ctx.charge_extract(k)
            counters.hash_probes += k
            match, positions = self.hash_table.probe(probe_keys)
            matched = np.nonzero(match)[0]
            filtered = {name: values[matched]
                        for name, values in filtered.items()}
            build_rows = positions[matched]
            for name in self.query.join.payload:
                filtered[name] = self.hash_table.payload[name][build_rows]
            page_of = page_of[matched]
            k = len(matched)

        if self.query.post_predicate is not None:
            post_ctx = self.ctx_factory(filtered, k, counters, self.layout)
            post_mask = self.query.post_predicate.evaluate(post_ctx, k)
            keep = np.nonzero(post_mask)[0]
            filtered = {name: values[keep]
                        for name, values in filtered.items()}
            page_of = page_of[keep]
            k = len(keep)

        out_ctx = self.ctx_factory(filtered, k, counters, self.layout)

        if self.query.select:
            return self._project(out_ctx, page_of, k, page_count, offsets,
                                 counters, touched)
        if agg_into is None:
            raise PlanError("aggregate unit needs a running AggState")
        bounds = np.searchsorted(page_of, np.arange(page_count + 1))
        if self.query.group_by is None:
            self._fold_scalar_segments(out_ctx, k, bounds, page_count,
                                       counters, agg_into)
        else:
            self._fold_grouped_segments(out_ctx, k, bounds, page_count,
                                        counters, agg_into)
        return UnitPartial(row_count=k, chunks=[], touched_nbytes=touched)

    def _project(self, out_ctx: EvalContext, page_of: np.ndarray, k: int,
                 page_count: int, offsets: Sequence[int],
                 counters: WorkCounters, touched: int) -> UnitPartial:
        out_columns = {}
        for name, expr in self.query.select:
            values = np.asarray(expr.evaluate(out_ctx, k))
            if values.ndim == 0:
                values = np.full(k, values)
            out_columns[name] = values
        if not self.per_page_output:
            counters.output_values += k * len(self.query.select)
            first = offsets[0] if offsets else 0
            return UnitPartial(row_count=k,
                               chunks=[(first, out_columns)],
                               touched_nbytes=touched)
        # Page-local DISTINCT / top-N: slice the unit's projected rows back
        # into page segments and apply exactly the per-page treatment.
        bounds = np.searchsorted(page_of, np.arange(page_count + 1))
        chunks = []
        total = 0
        for position in range(page_count):
            lo, hi = int(bounds[position]), int(bounds[position + 1])
            chunk = {name: values[lo:hi]
                     for name, values in out_columns.items()}
            k_page = hi - lo
            if self.query.distinct and k_page > 0:
                counters.distinct_candidates += k_page
                keep = distinct_indexes(chunk, self.query.output_names())
                chunk = {name: values[keep]
                         for name, values in chunk.items()}
                k_page = len(keep)
            if self.query.limit is not None and k_page > 0:
                counters.topn_candidates += k_page
                keep = top_n_indexes(chunk[self.query.order_by],
                                     self.query.limit,
                                     self.query.descending)
                chunk = {name: values[keep]
                         for name, values in chunk.items()}
                k_page = len(keep)
            counters.output_values += k_page * len(self.query.select)
            total += k_page
            chunks.append((offsets[position], chunk))
        return UnitPartial(row_count=total, chunks=chunks,
                           touched_nbytes=touched)

    # -- aggregation: per-page-segment partials, folded in page order --------

    def _fold_scalar_segments(self, out_ctx: EvalContext, k: int,
                              bounds: np.ndarray, page_count: int,
                              counters: WorkCounters,
                              agg_into: AggState) -> None:
        aggs = self.query.aggregates
        evaluated: dict[str, np.ndarray] = {}
        for agg in aggs:
            # Per page the kernel charges its segment's row count
            # (including empty segments, which charge 0) — the sum is k.
            counters.aggregate_updates += k
            if agg.kind == "count":
                continue
            values = np.asarray(agg.expr.evaluate(out_ctx, k))
            if values.ndim == 0:
                values = np.full(k, values)
            if agg.kind == "sum":
                values = values.astype(np.float64) \
                    if values.dtype.kind == "f" else values.astype(np.int64)
            evaluated[agg.name] = values
        for position in range(page_count):
            lo, hi = int(bounds[position]), int(bounds[position + 1])
            k_page = hi - lo
            for agg in aggs:
                if agg.kind == "count":
                    partial: Any = k_page
                elif k_page == 0:
                    partial = 0 if agg.kind == "sum" else None
                else:
                    segment = evaluated[agg.name][lo:hi]
                    if agg.kind == "sum":
                        partial = segment.sum().item()
                    elif agg.kind == "min":
                        partial = segment.min().item()
                    else:
                        partial = segment.max().item()
                agg_into.values[agg.name] = _merge_scalar(
                    agg.kind, agg_into.values.get(agg.name), partial)

    def _fold_grouped_segments(self, out_ctx: EvalContext, k: int,
                               bounds: np.ndarray, page_count: int,
                               counters: WorkCounters,
                               agg_into: AggState) -> None:
        aggs = self.query.aggregates
        names = self.query.group_by_columns
        evaluated: dict[str, np.ndarray] = {}
        if k:
            # Empty segments early-return in the per-page kernel, so only
            # the k surviving rows are ever charged.
            out_ctx.charge_extract(k * len(names))
            for agg in aggs:
                counters.aggregate_updates += k
                if agg.kind != "count":
                    evaluated[agg.name] = np.asarray(
                        agg.expr.evaluate(out_ctx, k))
        # Merging a page partial always (re)writes the scalar slots, even
        # for grouped queries where they stay None; mirror that so merged
        # states compare equal.
        for agg in aggs:
            agg_into.values[agg.name] = agg_into.values.get(agg.name)
        for position in range(page_count):
            lo, hi = int(bounds[position]), int(bounds[position + 1])
            k_page = hi - lo
            if k_page == 0:
                continue
            segment = slice(lo, hi)
            if len(names) == 1:
                groups, inverse = np.unique(
                    out_ctx.columns[names[0]][segment], return_inverse=True)
                group_list = groups.tolist()
            else:
                key_dtype = np.dtype([(name, out_ctx.columns[name].dtype)
                                      for name in names])
                keys = np.empty(k_page, dtype=key_dtype)
                for name in names:
                    keys[name] = out_ctx.columns[name][segment]
                groups, inverse = np.unique(keys, return_inverse=True)
                group_list = [tuple(g) for g in groups.tolist()]
            for agg in aggs:
                if agg.kind == "count":
                    partials = np.bincount(inverse, minlength=len(groups))
                elif agg.kind == "sum":
                    values = evaluated[agg.name][segment]
                    weights = values.astype(np.float64)
                    partials = np.bincount(inverse, weights=weights,
                                           minlength=len(groups))
                    if values.dtype.kind in "iu":
                        partials = partials.astype(np.int64)
                else:
                    values = evaluated[agg.name][segment]
                    reducer = np.minimum if agg.kind == "min" else np.maximum
                    fill = values.max() if agg.kind == "min" \
                        else values.min()
                    partials = np.full(len(groups), fill, dtype=values.dtype)
                    reducer.at(partials, inverse, values)
                for group, partial in zip(group_list, partials.tolist()):
                    entry = agg_into.groups.setdefault(group, {})
                    entry[agg.name] = _merge_scalar(
                        agg.kind, entry.get(agg.name), partial)
