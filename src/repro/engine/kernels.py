"""Per-page execution kernels shared by host and device placement.

The unit of execution is one page: decode the needed columns, apply the
predicate, optionally probe the join hash table, then project rows or fold
aggregates. :class:`PageKernel.process_page` does that functionally on real
page bytes while counting every priced operation; the caller (host executor
or Smart SSD program) charges the counters to the right CPU and moves the
right bytes over the right links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import PlanError
from repro.engine.expressions import EvalContext
from repro.engine.plans import AggSpec, JoinSpec, Query
from repro.model.counters import WorkCounters
from repro.storage.layout import Layout, decode_columns, touched_bytes
from repro.storage.page import PageHeader
from repro.storage.schema import Schema

#: Estimated per-entry bookkeeping bytes of a hash table (bucket pointers,
#: entry headers) — used for memory grants and cache-residency decisions.
HASH_ENTRY_OVERHEAD = 24


class HashTable:
    """An in-memory join table: unique keys mapping to payload columns.

    Implemented as sorted keys + aligned payload arrays; probes are binary
    searches, which is deterministic and vectorizes, while the *cost model*
    still prices each probe as a hash lookup.
    """

    def __init__(self, keys: np.ndarray, payload: dict[str, np.ndarray]):
        order = np.argsort(keys, kind="stable")
        self.keys = np.ascontiguousarray(keys[order])
        if len(np.unique(self.keys)) != len(self.keys):
            raise PlanError("hash-join build keys must be unique")
        self.payload = {name: np.ascontiguousarray(values[order])
                        for name, values in payload.items()}

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        """Estimated resident size (entries + payload + overhead)."""
        payload_nbytes = sum(v.nbytes for v in self.payload.values())
        return (self.keys.nbytes + payload_nbytes
                + HASH_ENTRY_OVERHEAD * len(self.keys))

    def probe(self, probe_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Look up ``probe_keys``; returns (match_mask, build_indices).

        ``build_indices`` is only meaningful where ``match_mask`` is True.
        """
        if len(self.keys) == 0:
            return (np.zeros(len(probe_keys), dtype=bool),
                    np.zeros(len(probe_keys), dtype=np.int64))
        positions = np.searchsorted(self.keys, probe_keys)
        positions = np.clip(positions, 0, len(self.keys) - 1)
        match = self.keys[positions] == probe_keys
        return match, positions


class BuildCollector:
    """Streaming accumulator for the join build side.

    Build pages arrive one I/O unit at a time (the device cannot buffer a
    multi-GB dimension table); :meth:`consume` decodes and counts each batch,
    :meth:`finish` assembles the final :class:`HashTable`.
    """

    def __init__(self, schema: Schema, spec: JoinSpec):
        self.schema = schema
        self.spec = spec
        self._key_chunks: list[np.ndarray] = []
        self._payload_chunks: dict[str, list[np.ndarray]] = {
            name: [] for name in spec.payload}
        self.needed = [spec.build_key, *spec.payload]
        if spec.build_predicate is not None:
            for name in sorted(spec.build_predicate.columns()):
                if name not in self.needed:
                    self.needed.append(name)

    def consume(self, pages: Sequence[bytes], counters: WorkCounters,
                layout: Layout) -> int:
        """Decode a batch of build pages; returns page bytes the CPU touched."""
        touched = 0
        for page in pages:
            header = PageHeader.decode(page)
            n = header.tuple_count
            counters.pages_parsed += 1
            if layout is Layout.NSM:
                counters.nsm_tuples_parsed += n
            touched += touched_bytes(layout, self.schema, self.needed, n)
            columns = decode_columns(self.schema, page, self.needed)
            ctx = EvalContext(columns, n, counters, layout)
            if self.spec.build_predicate is not None:
                mask = self.spec.build_predicate.evaluate(ctx, n)
                keep = np.nonzero(mask)[0]
            else:
                keep = np.arange(n)
            # Key + payload extraction for every inserted row.
            ctx.charge_extract(len(keep) * len(self.needed))
            counters.hash_builds += len(keep)
            self._key_chunks.append(columns[self.spec.build_key][keep])
            for name in self.spec.payload:
                self._payload_chunks[name].append(columns[name][keep])
        return touched

    def finish(self) -> HashTable:
        """Assemble the hash table from everything consumed."""
        if self._key_chunks:
            keys = np.concatenate(self._key_chunks)
            payload = {name: np.concatenate(chunks)
                       for name, chunks in self._payload_chunks.items()}
        else:
            keys = np.empty(0, dtype=np.int64)
            payload = {name: np.empty(0) for name in self.spec.payload}
        return HashTable(keys, payload)


def build_hash_table(schema: Schema, pages: Sequence[bytes], spec: JoinSpec,
                     counters: WorkCounters, layout: Layout) -> HashTable:
    """Decode build-side pages and construct the join table, counting work."""
    collector = BuildCollector(schema, spec)
    collector.consume(pages, counters, layout)
    return collector.finish()


def top_n_indexes(values: np.ndarray, n: int,
                  descending: bool) -> np.ndarray:
    """Indexes of the top-``n`` values, returned in original row order.

    Stable for ascending order; both placements (and the final merge) use
    this same helper, so results are deterministic and placement-agnostic.
    """
    order = np.argsort(values, kind="stable")
    if descending:
        order = order[::-1]
    return np.sort(order[:n])


def distinct_indexes(columns: dict[str, np.ndarray],
                     names: Sequence[str]) -> np.ndarray:
    """Indexes of the first occurrence of each distinct row, in row order.

    Shared by the page kernels (page-local dedupe), the merge step, and
    the reference executor, so DISTINCT results are identical everywhere.
    """
    n = len(next(iter(columns.values()))) if columns else 0
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if len(names) == 1:
        keys = columns[names[0]]
    else:
        key_dtype = np.dtype([(name, columns[name].dtype)
                              for name in names])
        keys = np.empty(n, dtype=key_dtype)
        for name in names:
            keys[name] = columns[name]
    __, first = np.unique(keys, return_index=True)
    return np.sort(first)


def order_and_limit_indexes(values: np.ndarray, limit: Optional[int],
                            descending: bool) -> np.ndarray:
    """Final presentation order: sorted by value, truncated to ``limit``.

    Shared by the executor's merge step and the reference executor so the
    row order (including tie handling) is identical everywhere.
    """
    if limit is not None:
        keep = top_n_indexes(values, limit, descending)
        order = np.argsort(values[keep], kind="stable")
        if descending:
            order = order[::-1]
        return keep[order]
    order = np.argsort(values, kind="stable")
    if descending:
        order = order[::-1]
    return order


class TopNState:
    """Device-resident bounded accumulator for ORDER BY ... LIMIT.

    The scan program offers each page's (already page-locally truncated)
    surviving rows together with their *ordinals* — global row positions in
    extent scan order — and the state keeps only candidates that can still
    make the final top ``limit``. Selection happens under the strict total
    order (value, ordinal), exactly the order :func:`top_n_indexes` induces
    over the host's concatenated chunk stream, so keeping the best ``n`` is
    associative and idempotent: folding page-by-page on the device yields
    the same surviving set as the host's single global pass, bit for bit,
    regardless of the order units complete in.
    """

    #: Compact once the candidate pool exceeds ``max(4 * limit, this)``.
    MIN_COMPACT_THRESHOLD = 256

    def __init__(self, order_by: str, limit: int, descending: bool):
        self.order_by = order_by
        self.limit = limit
        self.descending = descending
        self._ordinals: list[np.ndarray] = []
        self._chunks: list[dict[str, np.ndarray]] = []
        self._count = 0
        self._compact_at = max(4 * limit, self.MIN_COMPACT_THRESHOLD)

    @property
    def candidate_count(self) -> int:
        """Rows currently buffered (bounded by the compaction threshold)."""
        return self._count

    def offer(self, ordinals: np.ndarray,
              columns: dict[str, np.ndarray]) -> None:
        """Add one page's surviving rows to the candidate pool."""
        n = len(ordinals)
        if n == 0:
            return
        self._ordinals.append(np.asarray(ordinals, dtype=np.int64))
        self._chunks.append(columns)
        self._count += n
        if self._count > self._compact_at:
            self._compact()

    def _compact(self) -> None:
        ordinals = np.concatenate(self._ordinals)
        names = list(self._chunks[0])
        columns = {name: np.concatenate([chunk[name]
                                         for chunk in self._chunks])
                   for name in names}
        # Restore scan order first: ordinals are unique, so the stable
        # argsort inside top_n_indexes then breaks value ties exactly as
        # the host's concatenated-in-page-order pass would.
        order = np.argsort(ordinals, kind="stable")
        ordinals = ordinals[order]
        columns = {name: values[order] for name, values in columns.items()}
        keep = top_n_indexes(columns[self.order_by], self.limit,
                             self.descending)
        self._ordinals = [ordinals[keep]]
        self._chunks = [{name: values[keep]
                         for name, values in columns.items()}]
        self._count = len(keep)

    def finish(self) -> Optional[dict[str, np.ndarray]]:
        """The final top-``limit`` candidates in scan order, or None when
        nothing was ever offered."""
        if not self._chunks:
            return None
        self._compact()
        return self._chunks[0]


@dataclass
class AggState:
    """Mergeable partial state of the aggregate set."""

    values: dict[str, Any] = field(default_factory=dict)
    groups: dict[Any, dict[str, Any]] = field(default_factory=dict)

    def merge(self, other: "AggState", aggs: Sequence[AggSpec]) -> None:
        """Fold another partial into this one."""
        for agg in aggs:
            self.values[agg.name] = _merge_scalar(
                agg.kind, self.values.get(agg.name),
                other.values.get(agg.name))
        for group, partial in other.groups.items():
            mine = self.groups.setdefault(group, {})
            for agg in aggs:
                mine[agg.name] = _merge_scalar(
                    agg.kind, mine.get(agg.name), partial.get(agg.name))


def _merge_scalar(kind: str, a: Any, b: Any) -> Any:
    if a is None:
        return b
    if b is None:
        return a
    if kind in ("sum", "count"):
        return a + b
    if kind == "min":
        return min(a, b)
    return max(a, b)


@dataclass
class PagePartial:
    """Output of one page's worth of kernel work."""

    row_count: int
    columns: Optional[dict[str, np.ndarray]] = None  # select queries
    agg: Optional[AggState] = None                   # aggregate queries
    counters: WorkCounters = field(default_factory=WorkCounters)
    touched_nbytes: int = 0  # page bytes the CPU actually read


class PageKernel:
    """Compiled per-page execution for one :class:`Query`."""

    def __init__(self, query: Query, schema: Schema, layout: Layout,
                 hash_table: Optional[HashTable] = None,
                 ctx_factory: type[EvalContext] = EvalContext):
        if query.join is not None and hash_table is None:
            raise PlanError("join query needs a built hash table")
        self.query = query
        self.schema = schema
        self.layout = layout
        self.hash_table = hash_table
        self.ctx_factory = ctx_factory
        self.needed_columns = query.probe_side_columns()
        for name in self.needed_columns:
            schema.column_index(name)  # validate early

    def process_page(self, page: bytes) -> PagePartial:
        """Run the kernel over one page of real bytes."""
        counters = WorkCounters()
        header = PageHeader.decode(page)
        n = header.tuple_count
        counters.pages_parsed += 1
        if self.layout is Layout.NSM:
            counters.nsm_tuples_parsed += n
        columns = decode_columns(self.schema, page, self.needed_columns,
                                 header=header)
        touched = touched_bytes(self.layout, self.schema,
                                self.needed_columns, n)
        return self._evaluate(columns, n, counters, touched)

    def process_decoded(self, columns: dict[str, np.ndarray],
                        n: int) -> PagePartial:
        """Run the kernel over columns another scan already decoded.

        The page-setup and decode work happened elsewhere (and was charged
        there); only this query's marginal work — predicates, probes,
        aggregates, outputs — lands in the returned partial's counters.
        """
        counters = WorkCounters()
        return self._evaluate(columns, n, counters, touched=0)

    def _evaluate(self, columns: dict[str, np.ndarray], n: int,
                  counters: WorkCounters, touched: int) -> PagePartial:
        ctx = self.ctx_factory(columns, n, counters, self.layout)

        # 1. Selection.
        if self.query.predicate is not None:
            mask = self.query.predicate.evaluate(ctx, n)
            survivors = np.nonzero(mask)[0]
        else:
            survivors = np.arange(n)

        filtered = {name: values[survivors]
                    for name, values in columns.items()}
        k = len(survivors)

        # 2. Hash-join probe.
        if self.query.join is not None:
            probe_keys = filtered[self.query.join.probe_key]
            ctx.charge_extract(k)
            counters.hash_probes += k
            match, positions = self.hash_table.probe(probe_keys)
            matched = np.nonzero(match)[0]
            filtered = {name: values[matched]
                        for name, values in filtered.items()}
            build_rows = positions[matched]
            for name in self.query.join.payload:
                filtered[name] = self.hash_table.payload[name][build_rows]
            k = len(matched)

        # 2b. Post-join predicate (spans probe columns + build payload).
        if self.query.post_predicate is not None:
            post_ctx = self.ctx_factory(filtered, k, counters, self.layout)
            post_mask = self.query.post_predicate.evaluate(post_ctx, k)
            keep = np.nonzero(post_mask)[0]
            filtered = {name: values[keep]
                        for name, values in filtered.items()}
            k = len(keep)

        out_ctx = self.ctx_factory(filtered, k, counters, self.layout)

        # 3a. Projection (with optional page-local top-N truncation).
        if self.query.select:
            out_columns = {}
            for name, expr in self.query.select:
                values = np.asarray(expr.evaluate(out_ctx, k))
                if values.ndim == 0:
                    values = np.full(k, values)
                out_columns[name] = values
            if self.query.distinct and k > 0:
                counters.distinct_candidates += k
                keep = distinct_indexes(out_columns,
                                        self.query.output_names())
                out_columns = {name: values[keep]
                               for name, values in out_columns.items()}
                k = len(keep)
            if self.query.limit is not None and k > 0:
                counters.topn_candidates += k
                keep = top_n_indexes(out_columns[self.query.order_by],
                                     self.query.limit,
                                     self.query.descending)
                out_columns = {name: values[keep]
                               for name, values in out_columns.items()}
                k = len(keep)
            counters.output_values += k * len(self.query.select)
            return PagePartial(row_count=k, columns=out_columns,
                               counters=counters, touched_nbytes=touched)

        # 3b. Aggregation.
        state = AggState()
        if self.query.group_by is None:
            for agg in self.query.aggregates:
                state.values[agg.name] = self._scalar_partial(
                    agg, out_ctx, k, counters)
        else:
            self._grouped_partials(state, out_ctx, k, counters)
        return PagePartial(row_count=k, agg=state, counters=counters,
                           touched_nbytes=touched)

    # -- aggregation helpers ---------------------------------------------------

    def _scalar_partial(self, agg: AggSpec, ctx: EvalContext, k: int,
                        counters: WorkCounters) -> Any:
        counters.aggregate_updates += k
        if agg.kind == "count":
            return k
        values = np.asarray(agg.expr.evaluate(ctx, k))
        if values.ndim == 0:
            values = np.full(k, values)
        if k == 0:
            return 0 if agg.kind == "sum" else None
        if agg.kind == "sum":
            acc = values.astype(np.float64) if values.dtype.kind == "f" \
                else values.astype(np.int64)
            return acc.sum().item()
        if agg.kind == "min":
            return values.min().item()
        return values.max().item()

    def _grouped_partials(self, state: AggState, ctx: EvalContext, k: int,
                          counters: WorkCounters) -> None:
        if k == 0:
            return
        names = self.query.group_by_columns
        ctx.charge_extract(k * len(names))
        if len(names) == 1:
            groups, inverse = np.unique(ctx.columns[names[0]],
                                        return_inverse=True)
            group_list = groups.tolist()
        else:
            key_dtype = np.dtype([(name, ctx.columns[name].dtype)
                                  for name in names])
            keys = np.empty(k, dtype=key_dtype)
            for name in names:
                keys[name] = ctx.columns[name]
            groups, inverse = np.unique(keys, return_inverse=True)
            group_list = [tuple(g) for g in groups.tolist()]
        for agg in self.query.aggregates:
            counters.aggregate_updates += k
            if agg.kind == "count":
                partials = np.bincount(inverse, minlength=len(groups))
            elif agg.kind == "sum":
                values = np.asarray(agg.expr.evaluate(ctx, k))
                weights = values.astype(np.float64)
                partials = np.bincount(inverse, weights=weights,
                                       minlength=len(groups))
                if values.dtype.kind in "iu":
                    partials = partials.astype(np.int64)
            else:
                values = np.asarray(agg.expr.evaluate(ctx, k))
                reducer = np.minimum if agg.kind == "min" else np.maximum
                fill = values.max() if agg.kind == "min" else values.min()
                partials = np.full(len(groups), fill, dtype=values.dtype)
                reducer.at(partials, inverse, values)
            for group, partial in zip(group_list, partials.tolist()):
                state.groups.setdefault(group, {})[agg.name] = _merge_scalar(
                    agg.kind, state.groups.get(group, {}).get(agg.name),
                    partial)
