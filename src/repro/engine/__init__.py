"""Placement-neutral query machinery.

The paper's key move is running *the same database operator code* in two
places: on the host CPUs and inside the Smart SSD. This package holds that
shared code — expression trees, per-page kernels (filter / probe /
aggregate), hash tables, and the query description — so
:mod:`repro.host.executor` and :mod:`repro.smart.programs` execute
identically and differ only in where pages flow and which CPU is charged.
"""

from repro.engine.expressions import (
    Add,
    And,
    CachedEvalContext,
    CaseWhen,
    Col,
    Compare,
    Const,
    Div,
    EvalContext,
    Expr,
    LikePrefix,
    Mul,
    Or,
    Sub,
    and_all,
)
from repro.engine.kernels import (
    AggState,
    HashTable,
    PageKernel,
    PagePartial,
    build_hash_table,
)
from repro.engine.plans import AggSpec, JoinSpec, Placement, Query
from repro.engine.reference import run_reference

__all__ = [
    "Add",
    "AggSpec",
    "AggState",
    "And",
    "CachedEvalContext",
    "CaseWhen",
    "Col",
    "Compare",
    "Const",
    "Div",
    "EvalContext",
    "Expr",
    "HashTable",
    "JoinSpec",
    "LikePrefix",
    "Mul",
    "Or",
    "PageKernel",
    "PagePartial",
    "Placement",
    "Query",
    "Sub",
    "and_all",
    "build_hash_table",
    "run_reference",
]
