"""Reference executor: ground truth for correctness tests.

Runs a :class:`~repro.engine.plans.Query` directly over in-memory row
arrays — no pages, no devices, no pipelining, no counters — using plain
NumPy whole-table operations and a real Python dict for the join. The page
kernels, host executor, and Smart SSD path must all produce exactly these
results.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PlanError
from repro.engine.expressions import EvalContext
from repro.engine.plans import Query
from repro.model.counters import WorkCounters
from repro.storage.layout import Layout
from repro.storage.schema import Schema


def _as_columns(schema: Schema, rows: np.ndarray) -> dict[str, np.ndarray]:
    return {name: rows[name] for name in schema.names}


def run_reference(query: Query, schemas: dict[str, Schema],
                  tables: dict[str, np.ndarray]) -> Any:
    """Execute ``query`` over raw row arrays.

    Returns a dict of output-name -> array for select queries, a dict of
    aggregate-name -> value for scalar aggregates (after ``finalize``), or a
    dict of group -> {aggregate: value} for grouped aggregates.
    """
    if query.table not in tables:
        raise PlanError(f"missing table {query.table!r}")
    schema = schemas[query.table]
    columns = _as_columns(schema, tables[query.table])
    n = len(tables[query.table])
    scratch = WorkCounters()  # reference runs are not priced
    ctx = EvalContext(columns, n, scratch, Layout.PAX)

    if query.predicate is not None:
        mask = query.predicate.evaluate(ctx, n)
        keep = np.nonzero(mask)[0]
    else:
        keep = np.arange(n)
    filtered = {name: values[keep] for name, values in columns.items()}

    if query.join is not None:
        spec = query.join
        build_schema = schemas[spec.build_table]
        build_columns = _as_columns(build_schema, tables[spec.build_table])
        build_n = len(tables[spec.build_table])
        if spec.build_predicate is not None:
            bctx = EvalContext(build_columns, build_n, scratch, Layout.PAX)
            bmask = spec.build_predicate.evaluate(bctx, build_n)
            build_keep = np.nonzero(bmask)[0]
        else:
            build_keep = np.arange(build_n)
        mapping: dict[Any, int] = {}
        build_keys = build_columns[spec.build_key][build_keep]
        for position, key in enumerate(build_keys.tolist()):
            if key in mapping:
                raise PlanError("reference join requires unique build keys")
            mapping[key] = position
        probe_keys = filtered[spec.probe_key].tolist()
        matched_probe = []
        matched_build = []
        for row, key in enumerate(probe_keys):
            position = mapping.get(key)
            if position is not None:
                matched_probe.append(row)
                matched_build.append(position)
        probe_index = np.asarray(matched_probe, dtype=np.int64)
        build_index = np.asarray(matched_build, dtype=np.int64)
        filtered = {name: values[probe_index]
                    for name, values in filtered.items()}
        for name in spec.payload:
            filtered[name] = build_columns[name][build_keep][build_index]

    k = len(next(iter(filtered.values()))) if filtered else 0

    if query.post_predicate is not None:
        post_ctx = EvalContext(filtered, k, scratch, Layout.PAX)
        post_mask = query.post_predicate.evaluate(post_ctx, k)
        keep = np.nonzero(post_mask)[0]
        filtered = {name: values[keep] for name, values in filtered.items()}
        k = len(keep)

    out_ctx = EvalContext(filtered, k, scratch, Layout.PAX)

    if query.select:
        out = {}
        for name, expr in query.select:
            values = np.asarray(expr.evaluate(out_ctx, k))
            if values.ndim == 0:
                values = np.full(k, values)
            out[name] = values
        if query.distinct and k:
            from repro.engine.kernels import distinct_indexes
            keep = distinct_indexes(out, query.output_names())
            out = {name: values[keep] for name, values in out.items()}
        if query.order_by is not None and len(next(iter(out.values()))):
            from repro.engine.kernels import order_and_limit_indexes
            keep = order_and_limit_indexes(out[query.order_by], query.limit,
                                           query.descending)
            out = {name: values[keep] for name, values in out.items()}
        return out

    if query.group_by is not None:
        return _grouped_reference(query, out_ctx, k)

    result: dict[str, Any] = {}
    for agg in query.aggregates:
        if agg.kind == "count":
            result[agg.name] = k
            continue
        values = np.asarray(agg.expr.evaluate(out_ctx, k))
        if k == 0:
            result[agg.name] = 0 if agg.kind == "sum" else None
        elif agg.kind == "sum":
            acc = values.astype(np.float64) if values.dtype.kind == "f" \
                else values.astype(np.int64)
            result[agg.name] = acc.sum().item()
        elif agg.kind == "min":
            result[agg.name] = values.min().item()
        else:
            result[agg.name] = values.max().item()
    if query.finalize is not None:
        result = query.finalize(result)
    return result


def _grouped_reference(query: Query, ctx: EvalContext,
                       k: int) -> dict[Any, dict[str, Any]]:
    names = query.group_by_columns
    if len(names) == 1:
        key_rows = [(v,) for v in ctx.columns[names[0]].tolist()]
    else:
        key_rows = list(zip(*(ctx.columns[n].tolist() for n in names)))
    out: dict[Any, dict[str, Any]] = {}
    for group in sorted(set(key_rows)):
        members = np.asarray([i for i, key in enumerate(key_rows)
                              if key == group], dtype=np.int64)
        group = group[0] if len(names) == 1 else group
        sub = {name: values[members] for name, values in ctx.columns.items()}
        sub_ctx = EvalContext(sub, len(members), WorkCounters(), Layout.PAX)
        entry: dict[str, Any] = {}
        for agg in query.aggregates:
            if agg.kind == "count":
                entry[agg.name] = len(members)
                continue
            values = np.asarray(agg.expr.evaluate(sub_ctx, len(members)))
            if agg.kind == "sum":
                acc = values.astype(np.float64) if values.dtype.kind == "f" \
                    else values.astype(np.int64)
                entry[agg.name] = acc.sum().item()
            elif agg.kind == "min":
                entry[agg.name] = values.min().item()
            else:
                entry[agg.name] = values.max().item()
        out[group] = entry
    return out
