"""Compile predicates into conservative page-level pruning checks.

:func:`build_pruner` walks an expression tree and produces a
:class:`PagePruner` that answers one question per page: *given this page's
zone maps (and Bloom filters), could any tuple on it satisfy the
predicate?* The answer must never be a false "no" — a pruned page is
guaranteed to hold no qualifying tuple — but false "yes" answers are fine
(the page is read and filtered normally).

Only analyzable shapes prune:

* ``Col <op> Const`` (either operand order) over a zone map, with an
  equality probe additionally consulting the column's Bloom filter;
* ``LikePrefix(Col, prefix)`` as a byte-range check over a char zone map;
* ``And``/``Or`` combinations thereof — an ``Or`` prunes only when *both*
  sides are analyzable, an ``And`` when *either* side is.

Anything else (arithmetic over columns, ``CaseWhen``, column-vs-column
comparisons) conservatively matches every page. When no leaf is analyzable
at all, :func:`build_pruner` returns ``None`` and the scan proceeds
unpruned with zero overhead.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.engine.expressions import (
    And,
    Col,
    Compare,
    Const,
    Expr,
    LikePrefix,
    Or,
)
from repro.storage.schema import Schema
from repro.storage.stats import PageStats

_Check = Callable[[PageStats], bool]


class PagePruner:
    """A compiled page-qualification check for one predicate.

    Attributes:
        leaf_checks: number of analyzable leaves consulted per page — the
            unit the cost model charges as ``zone_map_checks``.
    """

    __slots__ = ("_check", "leaf_checks")

    def __init__(self, check: _Check, leaf_checks: int):
        self._check = check
        self.leaf_checks = leaf_checks

    def page_might_match(self, stats: PageStats) -> bool:
        """False only when the page provably holds no qualifying tuple."""
        if stats.tuple_count == 0:
            return False
        return self._check(stats)


def build_pruner(predicate: Optional[Expr],
                 schema: Schema) -> Optional[PagePruner]:
    """Compile ``predicate`` into a :class:`PagePruner`, or ``None``.

    ``None`` means the predicate (or its absence) gives the device nothing
    to prune on; callers skip the per-page check entirely.
    """
    if predicate is None:
        return None
    check, leaves = _compile(predicate, schema)
    if check is None or leaves == 0:
        return None
    return PagePruner(check, leaves)


def _compile(node: Expr, schema: Schema) -> tuple[Optional[_Check], int]:
    """Recursive compile: (check, leaf_count); (None, 0) = unanalyzable."""
    if isinstance(node, And):
        left, nl = _compile(node.left, schema)
        right, nr = _compile(node.right, schema)
        if left is None:
            return right, nr
        if right is None:
            return left, nl
        return (lambda stats: left(stats) and right(stats)), nl + nr
    if isinstance(node, Or):
        left, nl = _compile(node.left, schema)
        right, nr = _compile(node.right, schema)
        if left is None or right is None:
            return None, 0
        return (lambda stats: left(stats) or right(stats)), nl + nr
    if isinstance(node, Compare):
        return _compile_compare(node, schema)
    if isinstance(node, LikePrefix):
        return _compile_like(node, schema)
    return None, 0


def _compile_compare(node: Compare,
                     schema: Schema) -> tuple[Optional[_Check], int]:
    if isinstance(node.left, Col) and isinstance(node.right, Const):
        name, op, value = node.left.name, node.op, node.right.value
    elif isinstance(node.left, Const) and isinstance(node.right, Col):
        name, value = node.right.name, node.left.value
        op = _FLIPPED[node.op]
    else:
        return None, 0
    if not schema.has_column(name):
        return None, 0
    if isinstance(value, str):
        value = value.encode("ascii")

    def check(stats: PageStats) -> bool:
        column = stats.columns.get(name)
        if column is None:
            return True
        try:
            if op == "<":
                return column.vmin < value
            if op == "<=":
                return column.vmin <= value
            if op == ">":
                return column.vmax > value
            if op == ">=":
                return column.vmax >= value
            if op == "==":
                if not column.vmin <= value <= column.vmax:
                    return False
                bloom = stats.blooms.get(name)
                if (bloom is not None
                        and isinstance(value, (int, np.integer))
                        and not isinstance(value, bool)):
                    return bloom.might_contain(int(value))
                return True
            # "!=" prunes only a constant single-valued page.
            return not (column.vmin == column.vmax == value)
        except TypeError:
            return True  # incomparable constant: never prune on it

    return check, 1


#: ``Const <op> Col`` rewritten as ``Col <flipped-op> Const``.
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
            "==": "==", "!=": "!="}


def _compile_like(node: LikePrefix,
                  schema: Schema) -> tuple[Optional[_Check], int]:
    if not isinstance(node.column, Col):
        return None, 0
    name = node.column.name
    if not schema.has_column(name):
        return None, 0
    prefix = node.prefix
    upper = _prefix_upper(prefix)

    def check(stats: PageStats) -> bool:
        column = stats.columns.get(name)
        if column is None:
            return True
        try:
            # Matching values live in the byte range [prefix, upper).
            if column.vmax < prefix:
                return False
            if upper is not None and column.vmin >= upper:
                return False
            return True
        except TypeError:
            return True

    return check, 1


def _prefix_upper(prefix: bytes) -> Optional[bytes]:
    """Smallest byte string greater than every ``prefix``-prefixed value.

    Increments the last non-0xFF byte and truncates; an all-0xFF prefix has
    no upper bound (``None``), so only the lower bound prunes.
    """
    out = bytearray(prefix)
    while out:
        if out[-1] != 0xFF:
            out[-1] += 1
            return bytes(out)
        out.pop()
    return None
