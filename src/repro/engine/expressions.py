"""Vectorized expression trees that account for the work they do.

Expressions evaluate over a *column source* — a mapping of column name to
NumPy array for the rows under consideration — and increment
:class:`~repro.model.counters.WorkCounters` with exactly the operations a
tuple-at-a-time engine would perform, including short-circuit effects:
``And(a, b)`` only charges ``b`` for rows that survived ``a``.

The same tree evaluates identically on the host and inside the device; only
the pricing of the counters differs (layout-dependent extract costs, CPU
efficiency factors).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import ExpressionError
from repro.model.counters import WorkCounters
from repro.storage.layout import Layout

#: Comparison operators supported by :class:`Compare`.
_COMPARE_OPS: dict[str, Callable[[np.ndarray, Any], np.ndarray]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class EvalContext:
    """Evaluation state: columns, row count, counters, layout."""

    def __init__(self, columns: dict[str, np.ndarray], row_count: int,
                 counters: WorkCounters, layout: Layout):
        self.columns = columns
        self.row_count = row_count
        self.counters = counters
        self.layout = layout

    def charge_extract(self, active: int) -> None:
        """Charge one column-value extraction per active row."""
        if self.layout is Layout.NSM:
            self.counters.nsm_values_extracted += active
        else:
            self.counters.pax_values_extracted += active


class CachedEvalContext(EvalContext):
    """Evaluation over columns another query already materialized.

    Used by shared scans: the leader decodes each page's column union once
    (cold, full extract price); every member then re-reads values out of
    the device cache, charged at the far cheaper
    ``cached_value_extract`` rate regardless of layout.
    """

    def charge_extract(self, active: int) -> None:
        self.counters.cached_values_extracted += active


class Expr:
    """Base expression node."""

    def columns(self) -> set[str]:
        """Names of every column the expression references."""
        raise NotImplementedError

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        """Compute values for all rows, charging work for ``active`` rows.

        ``active`` is the number of rows this node is logically evaluated
        on (short-circuiting shrinks it); the returned array is always
        full-length so vectorized composition stays simple.
        """
        raise NotImplementedError

    def is_boolean(self) -> bool:
        """True when the node produces a predicate mask."""
        return False


class Col(Expr):
    """A column reference."""

    def __init__(self, name: str):
        self.name = name

    def columns(self) -> set[str]:
        return {self.name}

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        if self.name not in ctx.columns:
            raise ExpressionError(f"column {self.name!r} not available")
        ctx.charge_extract(active)
        return ctx.columns[self.name]

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


class Const(Expr):
    """A literal constant (free to evaluate)."""

    def __init__(self, value: Any):
        self.value = value

    def columns(self) -> set[str]:
        return set()

    def evaluate(self, ctx: EvalContext, active: int) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class _BinaryArith(Expr):
    """Shared behaviour of the arithmetic nodes."""

    symbol = "?"
    _op: Callable[[Any, Any], Any]

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        left = self.left.evaluate(ctx, active)
        right = self.right.evaluate(ctx, active)
        ctx.counters.arithmetic_ops += active
        return type(self)._op(left, right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Add(_BinaryArith):
    """Addition."""

    symbol = "+"
    _op = staticmethod(lambda a, b: a + b)


class Sub(_BinaryArith):
    """Subtraction."""

    symbol = "-"
    _op = staticmethod(lambda a, b: a - b)


class Mul(_BinaryArith):
    """Multiplication (promotes to int64/float to avoid overflow)."""

    symbol = "*"

    @staticmethod
    def _op(a, b):
        if isinstance(a, np.ndarray) and np.issubdtype(a.dtype, np.integer):
            a = a.astype(np.int64)
        return a * b


class Div(_BinaryArith):
    """True division (always floating point)."""

    symbol = "/"

    @staticmethod
    def _op(a, b):
        return np.asarray(a, dtype=np.float64) / b


class Compare(Expr):
    """A comparison predicate, e.g. ``Compare(Col("x"), "<", Const(5))``."""

    def __init__(self, left: Expr, op: str, right: Expr):
        if op not in _COMPARE_OPS:
            raise ExpressionError(f"unknown comparison operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        left = self.left.evaluate(ctx, active)
        right = self.right.evaluate(ctx, active)
        ctx.counters.predicates_evaluated += active
        mask = _COMPARE_OPS[self.op](left, right)
        return np.broadcast_to(np.asarray(mask, dtype=bool),
                               (ctx.row_count,))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """Short-circuit conjunction: the right side is charged only for rows
    that survived the left side."""

    def __init__(self, left: Expr, right: Expr):
        _require_boolean(left, right)
        self.left = left
        self.right = right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        left_mask = self.left.evaluate(ctx, active)
        survivors = min(active, int(np.count_nonzero(left_mask)))
        right_mask = self.right.evaluate(ctx, survivors)
        return left_mask & right_mask

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Expr):
    """Short-circuit disjunction: the right side is charged only for rows
    the left side rejected."""

    def __init__(self, left: Expr, right: Expr):
        _require_boolean(left, right)
        self.left = left
        self.right = right

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        left_mask = self.left.evaluate(ctx, active)
        remaining = max(0, active - int(np.count_nonzero(left_mask)))
        right_mask = self.right.evaluate(ctx, remaining)
        return left_mask | right_mask

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class LikePrefix(Expr):
    """``column LIKE 'prefix%'`` over a fixed-length char column."""

    def __init__(self, column: Expr, prefix: str | bytes):
        self.column = column
        self.prefix = (prefix.encode("ascii")
                       if isinstance(prefix, str) else bytes(prefix))

    def columns(self) -> set[str]:
        return self.column.columns()

    def is_boolean(self) -> bool:
        return True

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        values = self.column.evaluate(ctx, active)
        ctx.counters.like_evaluated += active
        width = len(self.prefix)
        # Compare the leading `width` bytes of each fixed-length string.
        itemsize = values.dtype.itemsize
        as_bytes = values.view(np.uint8).reshape(len(values),
                                                 itemsize)[:, :width]
        wanted = np.frombuffer(self.prefix, dtype=np.uint8)
        mask = (as_bytes == wanted).all(axis=1)
        return np.broadcast_to(mask, (ctx.row_count,))

    def __repr__(self) -> str:
        return f"({self.column!r} LIKE {self.prefix!r}%)"


class CaseWhen(Expr):
    """``CASE WHEN cond THEN a ELSE b END`` (Q14's promo discriminator)."""

    def __init__(self, condition: Expr, then: Expr, otherwise: Expr):
        if not condition.is_boolean():
            raise ExpressionError("CASE condition must be boolean")
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def columns(self) -> set[str]:
        return (self.condition.columns() | self.then.columns()
                | self.otherwise.columns())

    def evaluate(self, ctx: EvalContext, active: int) -> np.ndarray:
        mask = self.condition.evaluate(ctx, active)
        hits = min(active, int(np.count_nonzero(mask)))
        then_vals = self.then.evaluate(ctx, hits)
        else_vals = self.otherwise.evaluate(ctx, max(0, active - hits))
        return np.where(mask, then_vals, else_vals)

    def __repr__(self) -> str:
        return (f"CASE WHEN {self.condition!r} THEN {self.then!r} "
                f"ELSE {self.otherwise!r} END")


def _require_boolean(*nodes: Expr) -> None:
    for node in nodes:
        if not node.is_boolean():
            raise ExpressionError(
                f"{node!r} is not a boolean predicate")


def and_all(predicates: list[Expr]) -> Expr:
    """Left-to-right conjunction of a predicate list."""
    if not predicates:
        raise ExpressionError("and_all needs at least one predicate")
    result = predicates[0]
    for predicate in predicates[1:]:
        result = And(result, predicate)
    return result
