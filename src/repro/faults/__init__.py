"""Fault injection and recovery machinery (see ``docs/FAULTS.md``)."""

from repro.faults.health import DeviceHealth, HealthRegistry
from repro.faults.plan import (
    DEAD_COMMAND_TIMEOUT_S,
    KNOWN_SITES,
    SITE_DEVICE_DEAD,
    SITE_DEVICE_SLOW,
    SITE_GET_TIMEOUT,
    SITE_NAND_PROGRAM,
    SITE_NAND_READ,
    SITE_SESSION_CRASH,
    SITE_UNCLEAN_SHUTDOWN,
    FaultDecision,
    FaultEvent,
    FaultPlan,
    FaultRule,
    check_fault,
)
from repro.faults.recovery import (
    DEFAULT_RETRY_POLICY,
    TRANSIENT_ERROR_NAMES,
    RetryPolicy,
    is_transient_error,
)

__all__ = [
    "DEAD_COMMAND_TIMEOUT_S",
    "KNOWN_SITES",
    "SITE_DEVICE_DEAD",
    "SITE_DEVICE_SLOW",
    "SITE_GET_TIMEOUT",
    "SITE_NAND_PROGRAM",
    "SITE_NAND_READ",
    "SITE_SESSION_CRASH",
    "SITE_UNCLEAN_SHUTDOWN",
    "DEFAULT_RETRY_POLICY",
    "TRANSIENT_ERROR_NAMES",
    "DeviceHealth",
    "FaultDecision",
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "HealthRegistry",
    "RetryPolicy",
    "check_fault",
    "is_transient_error",
]
