"""Deterministic, seedable fault injection.

A :class:`FaultPlan` is a list of :class:`FaultRule`\\ s, each bound to one
named *fault site* — a string constant identifying a place in the stack that
asks "should something go wrong here?". Components consult the plan through
:func:`check_fault`; with no plan installed every site is a strict no-op, so
calibrated benchmark numbers are untouched.

Determinism: each rule owns its own PRNG stream, seeded from the plan seed
plus the rule's site and position. Because the simulation kernel itself is
deterministic, the same plan against the same workload fires the exact same
faults at the exact same virtual times, run after run — the property
``tests/test_faults.py`` locks in.

Sites (the ``SITE_*`` constants):

==========================  =================================================
site                        consulted by
==========================  =================================================
``nand.read``               :class:`~repro.flash.controller.FlashController`
                            per page of a timed read (ECC retry model)
``nand.program``            :meth:`~repro.flash.nand.NandArray.program`
``ftl.unclean_shutdown``    :meth:`~repro.flash.ssd.Ssd.power_cycle`
``session.crash``           the device programs, per I/O unit
``get.timeout``             :meth:`~repro.smart.device.SmartSsd.get`
                            (the reply is "lost" after results are staged)
``device.dead``             every protocol command and ``host_read``
``device.slow``             every protocol command (fixed added latency)
==========================  =================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import FaultConfigError

SITE_NAND_READ = "nand.read"
SITE_NAND_PROGRAM = "nand.program"
SITE_UNCLEAN_SHUTDOWN = "ftl.unclean_shutdown"
SITE_SESSION_CRASH = "session.crash"
SITE_GET_TIMEOUT = "get.timeout"
SITE_DEVICE_DEAD = "device.dead"
SITE_DEVICE_SLOW = "device.slow"

#: Virtual seconds a command burns before a dead device / lost GET reply is
#: declared timed out (rules override per-site with a ``delay=`` payload).
DEAD_COMMAND_TIMEOUT_S = 5e-3

#: Every site a rule may target; :meth:`FaultPlan.add` validates against it.
KNOWN_SITES = frozenset({
    SITE_NAND_READ,
    SITE_NAND_PROGRAM,
    SITE_UNCLEAN_SHUTDOWN,
    SITE_SESSION_CRASH,
    SITE_GET_TIMEOUT,
    SITE_DEVICE_DEAD,
    SITE_DEVICE_SLOW,
})


@dataclass(frozen=True)
class FaultDecision:
    """One fired fault: which rule fired and its injection parameters."""

    site: str
    rule_index: int
    hit: int                        # 1-based ordinal of the triggering hit
    payload: Mapping[str, Any]      # rule knobs (retries, delay, factor...)


@dataclass(frozen=True)
class FaultEvent:
    """Audit-log entry recorded every time a rule fires."""

    site: str
    rule_index: int
    hit: int
    time: Optional[float]           # virtual seconds, when the site knows it
    context: Mapping[str, Any]


class FaultRule:
    """One injection rule: *where* (site + match) and *when* (trigger).

    Trigger semantics, evaluated per matching hit:

    * the first ``after`` hits never fire (arm the rule mid-run);
    * an armed hit fires with ``probability`` (1.0 = always), drawn from the
      rule's private seeded stream;
    * once the rule has fired ``limit`` times it goes dormant (``None`` =
      unlimited) — this is how "retry eventually succeeds" scenarios are
      built.
    """

    def __init__(self, site: str, index: int, seed: int, *,
                 probability: float = 1.0, after: int = 0,
                 limit: Optional[int] = None,
                 match: Optional[Mapping[str, Any]] = None,
                 payload: Optional[Mapping[str, Any]] = None):
        if site not in KNOWN_SITES:
            raise FaultConfigError(
                f"unknown fault site {site!r}; known: {sorted(KNOWN_SITES)}")
        if not 0.0 <= probability <= 1.0:
            raise FaultConfigError(f"bad probability {probability}")
        if after < 0:
            raise FaultConfigError(f"negative 'after' {after}")
        if limit is not None and limit < 1:
            raise FaultConfigError(f"bad limit {limit}")
        self.site = site
        self.index = index
        self.probability = probability
        self.after = after
        self.limit = limit
        self.match = dict(match or {})
        self.payload = dict(payload or {})
        self.hits = 0
        self.fired = 0
        # str seeding is hashed with SHA-512 by CPython, so streams are
        # stable across processes (unlike hash()-based seeding).
        self._rng = random.Random(f"{seed}:{index}:{site}")

    def matches(self, context: Mapping[str, Any]) -> bool:
        """True when every match key equals the site's context value."""
        return all(context.get(key) == value
                   for key, value in self.match.items())

    def consider(self) -> bool:
        """Register one matching hit; returns True when the rule fires."""
        self.hits += 1
        if self.hits <= self.after:
            return False
        if self.limit is not None and self.fired >= self.limit:
            return False
        if self.probability < 1.0 and self._rng.random() >= self.probability:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A seeded set of fault rules plus the audit log of what fired."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rules: list[FaultRule] = []
        self.events: list[FaultEvent] = []

    def add(self, site: str, *, probability: float = 1.0, after: int = 0,
            limit: Optional[int] = None,
            match: Optional[Mapping[str, Any]] = None,
            **payload: Any) -> FaultRule:
        """Append a rule for ``site``; extra keywords become its payload."""
        rule = FaultRule(site, len(self.rules), self.seed,
                         probability=probability, after=after, limit=limit,
                         match=match, payload=payload)
        self.rules.append(rule)
        return rule

    def check(self, site: str, time: Optional[float] = None,
              **context: Any) -> Optional[FaultDecision]:
        """Ask whether a fault fires at ``site`` for this hit.

        Every rule matching the site and context counts the hit (so rule
        streams stay aligned however many rules exist); the first rule that
        fires wins and is logged.
        """
        decision = None
        for rule in self.rules:
            if rule.site != site or not rule.matches(context):
                continue
            if rule.consider() and decision is None:
                decision = FaultDecision(site=site, rule_index=rule.index,
                                         hit=rule.hits, payload=rule.payload)
                self.events.append(FaultEvent(
                    site=site, rule_index=rule.index, hit=rule.hits,
                    time=time, context=dict(context)))
        return decision

    def fired_count(self, site: Optional[str] = None) -> int:
        """Number of logged fault events (optionally for one site)."""
        if site is None:
            return len(self.events)
        return sum(1 for event in self.events if event.site == site)

    def summary(self) -> dict[str, int]:
        """Fired-event counts keyed by site (observability/test helper)."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.site] = out.get(event.site, 0) + 1
        return out


def check_fault(plan: Optional[FaultPlan], site: str,
                time: Optional[float] = None,
                **context: Any) -> Optional[FaultDecision]:
    """Plan-may-be-None wrapper every fault site goes through."""
    if plan is None:
        return None
    return plan.check(site, time=time, **context)
