"""Device health tracking: the optimizer's memory of recent failures.

The executor reports every pushdown failure and success here; the
cost-based optimizer consults :meth:`HealthRegistry.is_quarantined` before
even pricing the pushdown placement, so a device whose programs keep
crashing stops receiving pushdown work until it proves itself again.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DeviceHealth:
    """Failure/success record of one device."""

    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0


class HealthRegistry:
    """Per-device failure counters with a consecutive-failure quarantine."""

    def __init__(self, quarantine_after: int = 3):
        self.quarantine_after = quarantine_after
        self._devices: dict[str, DeviceHealth] = {}

    def status(self, device_name: str) -> DeviceHealth:
        """The (auto-created) health record of one device."""
        return self._devices.setdefault(device_name, DeviceHealth())

    def record_failure(self, device_name: str) -> None:
        """Note one pushdown failure (crash, timeout, media error)."""
        health = self.status(device_name)
        health.consecutive_failures += 1
        health.total_failures += 1

    def record_success(self, device_name: str) -> None:
        """Note one successful pushdown; clears the consecutive streak."""
        health = self.status(device_name)
        health.consecutive_failures = 0
        health.total_successes += 1

    def is_quarantined(self, device_name: str) -> bool:
        """True when the device's streak crossed the quarantine threshold."""
        return (self.status(device_name).consecutive_failures
                >= self.quarantine_after)
