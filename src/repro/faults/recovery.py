"""Recovery knobs: bounded retries with backoff, and host fallback.

One :class:`RetryPolicy` governs every host-side recovery loop — GET
re-polls after a lost reply, full session re-establishment after a device
program crash, and the final degradation from pushdown to a host-side scan.
The defaults are deliberately small so degraded runs stay fast; tests pin
their own policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry/backoff configuration for one execution."""

    #: GET re-polls (with the same ack, triggering idempotent resume) before
    #: the session is declared dead.
    max_get_retries: int = 3
    #: Full OPEN/GET/CLOSE session attempts (1 = no retry) before giving up
    #: on the pushdown placement entirely.
    max_session_attempts: int = 2
    #: First backoff delay in virtual seconds; doubles per consecutive
    #: failure (capped at ``backoff_cap_s``).
    backoff_s: float = 1e-3
    backoff_cap_s: float = 0.1
    #: When pushdown attempts are exhausted, degrade to the conventional
    #: host-side scan instead of failing the query.
    fallback_to_host: bool = True

    def __post_init__(self):
        if self.max_get_retries < 0 or self.max_session_attempts < 1:
            raise FaultConfigError("retry counts out of range")
        if self.backoff_s < 0 or self.backoff_cap_s < self.backoff_s:
            raise FaultConfigError("bad backoff configuration")

    def backoff(self, failure_count: int) -> float:
        """Delay before retry number ``failure_count`` (1-based)."""
        return min(self.backoff_s * (2 ** max(0, failure_count - 1)),
                   self.backoff_cap_s)


#: Shared default policy.
DEFAULT_RETRY_POLICY = RetryPolicy()


#: Device-side error classes worth retrying: injected or environmental
#: failures that a fresh attempt (or the host fallback path) can survive.
#: Everything else — protocol misuse, resource-grant refusals, validation
#: errors — is deterministic and re-raises immediately, exactly as before
#: the fault layer existed.
TRANSIENT_ERROR_NAMES = frozenset({
    "ProgramCrashError",
    "DeviceTimeoutError",
    "UncorrectableMediaError",
    "ProgramFailError",
})


def is_transient_error(error: str) -> bool:
    """Classify a session's ``"ExcName: detail"`` error string.

    Device programs report failures to the host as strings (the GET reply's
    ``error`` field), so the retry loop classifies by the leading exception
    name rather than by type.
    """
    name = error.split(":", 1)[0].strip()
    return name in TRANSIENT_ERROR_NAMES
