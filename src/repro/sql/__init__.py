"""A small SQL front end for the supported query class.

The paper expresses its workload as SQL (Q6, Q14, the synthetic join);
this package parses that dialect directly::

    session = repro.connect()
    ...
    report = session.execute(\"\"\"
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_shipdate <  DATE '1995-01-01'
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    \"\"\", placement=repro.Placement.SMART)

Supported: SELECT [DISTINCT] with expressions and aggregates (SUM, COUNT,
MIN, MAX, AVG — plus arithmetic *over* aggregates, e.g. Q14's ratio),
single-table FROM or the paper's two-table equi-join (comma join or JOIN
... ON), WHERE with AND/OR, comparisons, BETWEEN, LIKE 'prefix%', CASE
WHEN, GROUP BY, ORDER BY ... [DESC], and LIMIT.

The binder understands the paper's storage modifications: comparing a
x100-decimal column against ``0.05`` scales the literal, ``DATE
'1994-01-01'`` becomes days-since-epoch, and decimal-scaled aggregate
results are descaled back to human units in the finalize step.
"""

from repro.sql.binder import bind
from repro.sql.lexer import SqlError, tokenize
from repro.sql.parser import parse

__all__ = ["SqlError", "bind", "parse", "tokenize"]


def compile_sql(sql: str, catalog) -> "repro.engine.plans.Query":
    """Parse and bind a SQL string against a catalog; returns a Query."""
    return bind(parse(tokenize(sql)), catalog)
