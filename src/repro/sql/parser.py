"""Recursive-descent SQL parser producing a small AST.

The AST is deliberately separate from :mod:`repro.engine.expressions`: the
binder resolves names and storage scaling afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql.lexer import SqlError, Token

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    """Integer or decimal literal (kept as text for exact scaling)."""

    text: str


@dataclass(frozen=True)
class StringLit:
    """String literal."""

    value: str


@dataclass(frozen=True)
class DateLit:
    """DATE 'YYYY-MM-DD' literal."""

    text: str


@dataclass(frozen=True)
class ColRef:
    """Possibly-qualified column reference."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class BinOp:
    """Arithmetic: + - * /."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Cmp:
    """Comparison: < <= > >= = <> !=."""

    op: str
    left: object
    right: object


@dataclass(frozen=True)
class AndE:
    left: object
    right: object


@dataclass(frozen=True)
class OrE:
    left: object
    right: object


@dataclass(frozen=True)
class BetweenE:
    """expr BETWEEN lo AND hi (inclusive)."""

    expr: object
    low: object
    high: object


@dataclass(frozen=True)
class LikeE:
    """expr LIKE 'prefix%'."""

    expr: object
    pattern: str


@dataclass(frozen=True)
class InE:
    """expr IN (literal, ...)."""

    expr: object
    items: tuple


@dataclass(frozen=True)
class CaseE:
    """CASE WHEN cond THEN a ELSE b END."""

    condition: object
    then: object
    otherwise: object


@dataclass(frozen=True)
class FuncCall:
    """Aggregate call: SUM/COUNT/MIN/MAX/AVG; arg is None for COUNT(*)."""

    name: str
    arg: Optional[object]


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: Optional[str]


@dataclass(frozen=True)
class JoinOn:
    """Explicit JOIN ... ON a.x = b.y."""

    table: str
    left: ColRef
    right: ColRef


@dataclass
class SelectStmt:
    """One parsed SELECT statement."""

    distinct: bool = False
    items: list[SelectItem] = field(default_factory=list)
    tables: list[str] = field(default_factory=list)
    join_on: Optional[JoinOn] = None
    where: Optional[object] = None
    group_by: list[ColRef] = field(default_factory=list)
    order_by: Optional[ColRef] = None
    descending: bool = False
    limit: Optional[int] = None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value or kind
            raise SqlError(
                f"expected {want!r} but found {self.current.value!r} "
                f"at position {self.current.position}")
        return token

    # -- grammar ---------------------------------------------------------------

    def parse_select(self) -> SelectStmt:
        stmt = SelectStmt()
        self.expect("keyword", "SELECT")
        stmt.distinct = bool(self.accept("keyword", "DISTINCT"))
        stmt.items = self._select_list()
        self.expect("keyword", "FROM")
        stmt.tables.append(self.expect("ident").value)
        if self.accept("op", ","):
            stmt.tables.append(self.expect("ident").value)
        elif self.accept("keyword", "JOIN"):
            table = self.expect("ident").value
            self.expect("keyword", "ON")
            left = self._column_ref()
            self.expect("op", "=")
            right = self._column_ref()
            stmt.tables.append(table)
            stmt.join_on = JoinOn(table=table, left=left, right=right)
        if self.accept("keyword", "WHERE"):
            stmt.where = self._or_expr()
        if self.accept("keyword", "GROUP"):
            self.expect("keyword", "BY")
            stmt.group_by.append(self._column_ref())
            while self.accept("op", ","):
                stmt.group_by.append(self._column_ref())
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            stmt.order_by = self._column_ref()
            if self.accept("keyword", "DESC"):
                stmt.descending = True
            else:
                self.accept("keyword", "ASC")
        if self.accept("keyword", "LIMIT"):
            stmt.limit = int(self.expect("number").value)
        self.expect("end")
        return stmt

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self.accept("op", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self._add_expr()
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _column_ref(self) -> ColRef:
        first = self.expect("ident").value
        if self.accept("op", "."):
            return ColRef(table=first, name=self.expect("ident").value)
        return ColRef(table=None, name=first)

    # -- boolean expressions -------------------------------------------------

    def _or_expr(self):
        node = self._and_expr()
        while self.accept("keyword", "OR"):
            node = OrE(node, self._and_expr())
        return node

    def _and_expr(self):
        node = self._predicate()
        while self.accept("keyword", "AND"):
            node = AndE(node, self._predicate())
        return node

    def _predicate(self):
        if self.accept("op", "("):
            # Could be a parenthesised boolean or arithmetic expression;
            # parse as boolean (arithmetic groups are handled in _atom).
            inner = self._or_expr()
            self.expect("op", ")")
            return inner
        left = self._add_expr()
        if self.accept("keyword", "BETWEEN"):
            low = self._add_expr()
            self.expect("keyword", "AND")
            high = self._add_expr()
            return BetweenE(expr=left, low=low, high=high)
        if self.accept("keyword", "LIKE"):
            pattern = self.expect("string").value
            return LikeE(expr=left, pattern=pattern)
        if self.accept("keyword", "IN"):
            self.expect("op", "(")
            items = [self._add_expr()]
            while self.accept("op", ","):
                items.append(self._add_expr())
            self.expect("op", ")")
            return InE(expr=left, items=tuple(items))
        for op in ("<=", ">=", "<>", "!=", "<", ">", "="):
            if self.accept("op", op):
                return Cmp(op=op, left=left, right=self._add_expr())
        raise SqlError(
            f"expected a comparison at position {self.current.position}")

    # -- arithmetic expressions -------------------------------------------------

    def _add_expr(self):
        node = self._mul_expr()
        while True:
            if self.accept("op", "+"):
                node = BinOp("+", node, self._mul_expr())
            elif self.accept("op", "-"):
                node = BinOp("-", node, self._mul_expr())
            else:
                return node

    def _mul_expr(self):
        node = self._atom()
        while True:
            if self.accept("op", "*"):
                node = BinOp("*", node, self._atom())
            elif self.accept("op", "/"):
                node = BinOp("/", node, self._atom())
            else:
                return node

    def _atom(self):
        token = self.current
        if self.accept("op", "("):
            inner = self._add_expr()
            self.expect("op", ")")
            return inner
        if self.accept("op", "-"):
            operand = self._atom()
            return BinOp("-", NumberLit("0"), operand)
        if token.kind == "number":
            self.advance()
            return NumberLit(token.value)
        if token.kind == "string":
            self.advance()
            return StringLit(token.value)
        if self.accept("keyword", "DATE"):
            return DateLit(self.expect("string").value)
        if self.accept("keyword", "CASE"):
            self.expect("keyword", "WHEN")
            condition = self._or_expr()
            self.expect("keyword", "THEN")
            then = self._add_expr()
            self.expect("keyword", "ELSE")
            otherwise = self._add_expr()
            self.expect("keyword", "END")
            return CaseE(condition=condition, then=then,
                         otherwise=otherwise)
        for func in ("SUM", "COUNT", "MIN", "MAX", "AVG"):
            if self.accept("keyword", func):
                self.expect("op", "(")
                if func == "COUNT" and self.accept("op", "*"):
                    self.expect("op", ")")
                    return FuncCall(name="COUNT", arg=None)
                arg = self._add_expr()
                self.expect("op", ")")
                return FuncCall(name=func, arg=arg)
        if token.kind == "ident":
            return self._column_ref()
        raise SqlError(
            f"unexpected token {token.value!r} at position {token.position}")


def parse(tokens: list[Token]) -> SelectStmt:
    """Parse a token stream into a SELECT statement AST."""
    return _Parser(tokens).parse_select()
