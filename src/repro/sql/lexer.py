"""SQL tokenizer for the supported dialect."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ReproError


class SqlError(ReproError):
    """Lexing, parsing, or binding failure, with position context."""


#: Reserved words (case-insensitive).
KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "ORDER", "BY",
    "LIMIT", "AND", "OR", "NOT", "AS", "ASC", "DESC", "BETWEEN", "LIKE",
    "CASE", "WHEN", "THEN", "ELSE", "END", "DATE", "JOIN", "ON", "IN",
    "SUM", "COUNT", "MIN", "MAX", "AVG",
}

#: Multi-character operators, longest first.
_OPERATORS = ["<=", ">=", "<>", "!=", "<", ">", "=", "+", "-", "*", "/",
              "(", ")", ",", "."]


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str    # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'end'
    value: str
    position: int

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        """Kind (and optionally value) equality."""
        return self.kind == kind and (value is None or self.value == value)


def tokenize(sql: str) -> list[Token]:
    """Split a SQL string into tokens; raises SqlError on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            end = sql.find("'", index + 1)
            if end < 0:
                raise SqlError(f"unterminated string at position {index}")
            tokens.append(Token("string", sql[index + 1:end], index))
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length
                              and sql[index + 1].isdigit()):
            start = index
            seen_dot = False
            while index < length and (sql[index].isdigit()
                                      or (sql[index] == "." and not seen_dot)):
                if sql[index] == ".":
                    # A dot followed by a non-digit is a qualifier, not a
                    # decimal point (e.g. "t1.col" after "1"? — not valid
                    # SQL anyway, but be strict).
                    if index + 1 >= length or not sql[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            tokens.append(Token("number", sql[start:index], start))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (sql[index].isalnum()
                                      or sql[index] == "_"):
                index += 1
            word = sql[start:index]
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper(), start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        for operator in _OPERATORS:
            if sql.startswith(operator, index):
                tokens.append(Token("op", operator, index))
                index += len(operator)
                break
        else:
            raise SqlError(
                f"unexpected character {char!r} at position {index}")
    tokens.append(Token("end", "", length))
    return tokens
