"""Bind a parsed SELECT statement to a :class:`~repro.engine.plans.Query`.

The binder resolves names against the catalog and — crucially for the
paper's workload — understands the §4.1.1 storage modifications:

* comparing a x100-decimal column with ``0.05`` scales the literal to 5;
* ``DATE '1994-01-01'`` becomes days-since-epoch;
* arithmetic tracks decimal scales (``l_extendedprice * (1 - l_discount)``
  carries scale 4), and aggregate results are descaled back to human units
  in the synthesized finalize step;
* ``AVG`` expands to SUM/COUNT, and arbitrary arithmetic over aggregates
  (Q14's ``100 * SUM(..) / SUM(..)``) is evaluated in finalize.

For two-table queries the smaller relation becomes the hash-join build side
(the paper's plan shape); the equality predicate linking the tables is
lifted out of WHERE (comma joins) or taken from ``JOIN ... ON``.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.engine import expressions as engine
from repro.engine.plans import AggSpec, JoinSpec, Query
from repro.host.catalog import Catalog, Table
from repro.sql import parser as ast
from repro.sql.lexer import SqlError
from repro.storage.types import CharType, DecimalType

# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------


class _Scope:
    """Tables in scope and column resolution."""

    def __init__(self, tables: list[Table]):
        self.tables = tables

    def resolve(self, ref: ast.ColRef) -> tuple[Table, str]:
        if ref.table is not None:
            for table in self.tables:
                if table.name == ref.table:
                    if not table.schema.has_column(ref.name):
                        raise SqlError(
                            f"table {ref.table!r} has no column {ref.name!r}")
                    return table, ref.name
            raise SqlError(f"unknown table {ref.table!r}")
        owners = [table for table in self.tables
                  if table.schema.has_column(ref.name)]
        if not owners:
            raise SqlError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise SqlError(f"ambiguous column {ref.name!r}; qualify it")
        return owners[0], ref.name


# ---------------------------------------------------------------------------
# Scale-aware expression binding
# ---------------------------------------------------------------------------


@dataclass
class _Bound:
    """A bound scalar expression with its decimal scale.

    ``literal`` is set (and ``expr`` is None) while the value is still a
    pure literal whose scale can adapt to context. ``char_width`` carries
    the fixed width of CHAR columns so string literals can be
    space-padded for comparisons.
    """

    expr: Optional[engine.Expr]
    scale: int
    literal: Optional[float] = None
    char_width: Optional[int] = None

    def realize(self, scale: Optional[int] = None) -> engine.Expr:
        """Materialize as an engine expression at the given scale."""
        if self.expr is not None:
            return self.expr
        target = self.scale if scale is None else scale
        value = self.literal * (10 ** target)
        rounded = round(value)
        if abs(value - rounded) < 1e-9:
            return engine.Const(int(rounded))
        return engine.Const(value)

    def at_scale(self, scale: int) -> "_Bound":
        """Adapt a literal to a context scale (no-op for bound columns)."""
        if self.literal is None:
            if self.scale != scale:
                raise SqlError(
                    f"decimal scale mismatch ({self.scale} vs {scale}); "
                    "rescale one side explicitly")
            return self
        return _Bound(expr=None, scale=scale, literal=self.literal)


_EPOCH = datetime.date(1970, 1, 1)

_CMP_MAP = {"=": "==", "<>": "!=", "!=": "!=",
            "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _parse_date(text: str) -> int:
    try:
        year, month, day = (int(part) for part in text.split("-"))
        return (datetime.date(year, month, day) - _EPOCH).days
    except (ValueError, TypeError) as exc:
        raise SqlError(f"bad DATE literal {text!r}") from exc


class _ExprBinder:
    """Binds scan-side (non-aggregate) scalar and boolean expressions."""

    def __init__(self, scope: _Scope):
        self.scope = scope

    # -- scalars -----------------------------------------------------------

    def scalar(self, node: Any) -> _Bound:
        if isinstance(node, ast.NumberLit):
            return _Bound(expr=None, scale=0, literal=float(node.text))
        if isinstance(node, ast.DateLit):
            return _Bound(expr=engine.Const(_parse_date(node.text)), scale=0)
        if isinstance(node, ast.StringLit):
            return _Bound(expr=engine.Const(node.value.encode("ascii")),
                          scale=0)
        if isinstance(node, ast.ColRef):
            table, name = self.scope.resolve(node)
            ctype = table.schema.column(name).ctype
            scale = ctype.scale if isinstance(ctype, DecimalType) else 0
            width = ctype.length if isinstance(ctype, CharType) else None
            return _Bound(expr=engine.Col(name), scale=scale,
                          char_width=width)
        if isinstance(node, ast.BinOp):
            return self._arith(node)
        if isinstance(node, ast.CaseE):
            condition = self.boolean(node.condition)
            then = self.scalar(node.then)
            otherwise = self.scalar(node.otherwise)
            then, otherwise = _unify(then, otherwise)
            return _Bound(expr=engine.CaseWhen(condition, then.realize(),
                                               otherwise.realize()),
                          scale=then.scale)
        if isinstance(node, ast.FuncCall):
            raise SqlError("aggregates are not allowed here")
        raise SqlError(f"unsupported expression {node!r}")

    def _arith(self, node: ast.BinOp) -> _Bound:
        left = self.scalar(node.left)
        right = self.scalar(node.right)
        if node.op in ("+", "-"):
            left, right = _unify(left, right)
            if left.literal is not None and right.literal is not None:
                value = (left.literal + right.literal if node.op == "+"
                         else left.literal - right.literal)
                return _Bound(expr=None, scale=0, literal=value)
            cls = engine.Add if node.op == "+" else engine.Sub
            return _Bound(expr=cls(left.realize(), right.realize()),
                          scale=left.scale)
        if node.op == "*":
            if left.literal is not None and right.literal is not None:
                return _Bound(expr=None, scale=0,
                              literal=left.literal * right.literal)
            return _Bound(expr=engine.Mul(left.realize(), right.realize()),
                          scale=left.scale + right.scale)
        # Division: result scale is the difference; engine division is
        # floating point, so negative net scales are handled in finalize.
        if left.literal is not None and right.literal is not None:
            return _Bound(expr=None, scale=0,
                          literal=left.literal / right.literal)
        return _Bound(expr=engine.Div(left.realize(), right.realize()),
                      scale=left.scale - right.scale)

    # -- booleans ------------------------------------------------------------

    def boolean(self, node: Any) -> engine.Expr:
        if isinstance(node, ast.AndE):
            return engine.And(self.boolean(node.left),
                              self.boolean(node.right))
        if isinstance(node, ast.OrE):
            return engine.Or(self.boolean(node.left),
                             self.boolean(node.right))
        if isinstance(node, ast.Cmp):
            left = self.scalar(node.left)
            right = self.scalar(node.right)
            left, right = _unify(left, right)
            right = _pad_string_literal(left, right)
            left = _pad_string_literal(right, left)
            return engine.Compare(left.realize(), _CMP_MAP[node.op],
                                  right.realize())
        if isinstance(node, ast.BetweenE):
            expr = self.scalar(node.expr)
            low = self.scalar(node.low).at_scale(expr.scale)
            high = self.scalar(node.high).at_scale(expr.scale)
            return engine.And(
                engine.Compare(expr.realize(), ">=", low.realize()),
                engine.Compare(expr.realize(), "<=", high.realize()))
        if isinstance(node, ast.LikeE):
            pattern = node.pattern
            if not pattern.endswith("%") or "%" in pattern[:-1]:
                raise SqlError(
                    f"only prefix LIKE patterns are supported, "
                    f"got {pattern!r}")
            column = self.scalar(node.expr)
            return engine.LikePrefix(column.realize(), pattern[:-1])
        if isinstance(node, ast.InE):
            expr = self.scalar(node.expr)
            out = None
            for item in node.items:
                candidate = self.scalar(item).at_scale(expr.scale)
                candidate = _pad_string_literal(expr, candidate)
                clause = engine.Compare(expr.realize(), "==",
                                        candidate.realize())
                out = clause if out is None else engine.Or(out, clause)
            return out
        raise SqlError(f"expected a boolean expression, got {node!r}")


def _pad_string_literal(column: _Bound, other: _Bound) -> _Bound:
    """Space-pad a bytes literal to a CHAR column's fixed width."""
    if (column.char_width is not None
            and isinstance(other.expr, engine.Const)
            and isinstance(other.expr.value, bytes)):
        padded = other.expr.value.ljust(column.char_width, b" ")
        if len(padded) > column.char_width:
            raise SqlError(
                f"string literal longer than CHAR({column.char_width})")
        return _Bound(expr=engine.Const(padded), scale=0)
    return other


def _unify(a: _Bound, b: _Bound) -> tuple[_Bound, _Bound]:
    """Bring two operands to a common decimal scale via literal rescaling."""
    if a.literal is not None and b.literal is None:
        return a.at_scale(b.scale), b
    if b.literal is not None and a.literal is None:
        return a, b.at_scale(a.scale)
    if a.literal is None and b.literal is None and a.scale != b.scale:
        raise SqlError(
            f"decimal scale mismatch ({a.scale} vs {b.scale})")
    return a, b


# ---------------------------------------------------------------------------
# Aggregate select items
# ---------------------------------------------------------------------------


@dataclass
class _AggItem:
    """One select item that involves aggregates."""

    name: str
    evaluator: Callable[[dict[str, Any]], Any]
    scale: int


class _AggBinder:
    """Extracts AggSpecs and builds finalize evaluators."""

    def __init__(self, expr_binder: _ExprBinder):
        self.expr_binder = expr_binder
        self.specs: list[AggSpec] = []
        self._slot = 0
        self._count_slot: Optional[str] = None

    def _new_slot(self, kind: str) -> str:
        self._slot += 1
        return f"_{kind}_{self._slot}"

    def _row_count_slot(self) -> str:
        """COUNT(*) is shared between explicit counts and AVG denominators."""
        if self._count_slot is None:
            self._count_slot = self._new_slot("count")
            self.specs.append(AggSpec("count", None, self._count_slot))
        return self._count_slot

    def contains_aggregate(self, node: Any) -> bool:
        if isinstance(node, ast.FuncCall):
            return True
        if isinstance(node, ast.BinOp):
            return (self.contains_aggregate(node.left)
                    or self.contains_aggregate(node.right))
        if isinstance(node, ast.CaseE):
            return (self.contains_aggregate(node.then)
                    or self.contains_aggregate(node.otherwise))
        return False

    def bind_item(self, node: Any) -> tuple[Callable, int]:
        """Returns (evaluator over the merged-aggregates dict, scale)."""
        if isinstance(node, ast.FuncCall):
            return self._bind_call(node)
        if isinstance(node, ast.NumberLit):
            value = float(node.text)
            value = int(value) if value.is_integer() else value
            return (lambda values, v=value: v), 0
        if isinstance(node, ast.BinOp):
            left, left_scale = self.bind_item(node.left)
            right, right_scale = self.bind_item(node.right)
            op = node.op
            if op in ("+", "-"):
                if left_scale != right_scale:
                    raise SqlError("scale mismatch in aggregate arithmetic")
                if op == "+":
                    return (lambda v: left(v) + right(v)), left_scale
                return (lambda v: left(v) - right(v)), left_scale
            if op == "*":
                return (lambda v: left(v) * right(v)), left_scale + right_scale
            def divide(values):
                denominator = right(values)
                return left(values) / denominator if denominator else 0.0
            return divide, left_scale - right_scale
        raise SqlError(
            f"unsupported expression over aggregates: {node!r}")

    def _bind_call(self, node: ast.FuncCall) -> tuple[Callable, int]:
        if node.name == "COUNT":
            slot = self._row_count_slot()
            return (lambda values, s=slot: values[s]), 0
        bound = self.expr_binder.scalar(node.arg)
        expr = bound.realize()
        if node.name in ("SUM", "MIN", "MAX"):
            slot = self._new_slot(node.name.lower())
            self.specs.append(AggSpec(node.name.lower(), expr, slot))
            return (lambda values, s=slot: values[s]), bound.scale
        # AVG(x) => SUM(x) / COUNT(*).
        sum_slot = self._new_slot("sum")
        count_slot = self._row_count_slot()
        self.specs.append(AggSpec("sum", expr, sum_slot))

        def average(values, s=sum_slot, c=count_slot):
            return values[s] / values[c] if values[c] else None

        return average, bound.scale


# ---------------------------------------------------------------------------
# Statement binding
# ---------------------------------------------------------------------------


def bind(stmt: ast.SelectStmt, catalog: Catalog) -> Query:
    """Bind a parsed statement against the catalog; returns a Query."""
    tables = [catalog.table(name) for name in stmt.tables]
    scope = _Scope(tables)
    binder = _ExprBinder(scope)

    join_spec, fact, where_node = _plan_join(stmt, tables, scope)
    if join_spec is None:
        predicate = (binder.boolean(where_node)
                     if where_node is not None else None)
        post_predicate = None
    else:
        predicate, build_pred, post_predicate = _split_where(
            where_node, binder, scope, fact, join_spec.build_table)
        join_spec = JoinSpec(build_table=join_spec.build_table,
                             build_key=join_spec.build_key,
                             probe_key=join_spec.probe_key,
                             payload=join_spec.payload,
                             build_predicate=build_pred)

    agg_binder = _AggBinder(binder)
    has_aggregates = any(agg_binder.contains_aggregate(item.expr)
                         for item in stmt.items)
    group_names = tuple(scope.resolve(ref)[1] for ref in stmt.group_by)

    if has_aggregates or group_names:
        return _bind_aggregate_query(stmt, binder, agg_binder, predicate,
                                     post_predicate, join_spec, fact,
                                     group_names)
    return _bind_row_query(stmt, binder, predicate, post_predicate,
                           join_spec, fact)


def _flatten_conjuncts(node) -> list:
    if isinstance(node, ast.AndE):
        return _flatten_conjuncts(node.left) + _flatten_conjuncts(node.right)
    return [node]


def _tables_of(node, scope: _Scope) -> set[str]:
    """Names of every table a predicate subtree references."""
    names: set[str] = set()

    def walk(sub) -> None:
        if isinstance(sub, ast.ColRef):
            names.add(scope.resolve(sub)[0].name)
        elif isinstance(sub, (ast.BinOp, ast.AndE, ast.OrE, ast.Cmp)):
            walk(sub.left)
            walk(sub.right)
        elif isinstance(sub, ast.BetweenE):
            walk(sub.expr)
            walk(sub.low)
            walk(sub.high)
        elif isinstance(sub, (ast.LikeE,)):
            walk(sub.expr)
        elif isinstance(sub, ast.InE):
            walk(sub.expr)
            for item in sub.items:
                walk(item)
        elif isinstance(sub, ast.CaseE):
            walk(sub.condition)
            walk(sub.then)
            walk(sub.otherwise)
        elif isinstance(sub, ast.FuncCall) and sub.arg is not None:
            walk(sub.arg)

    walk(node)
    return names


def _split_where(where_node, binder: _ExprBinder, scope: _Scope, fact,
                 build_name: str):
    """Classify WHERE conjuncts: fact-side scan filter, build-side filter
    (applied while hashing), or post-join (spans both sides)."""
    if where_node is None:
        return None, None, None
    pre: list = []
    build: list = []
    post: list = []
    for conjunct in _flatten_conjuncts(where_node):
        tables = _tables_of(conjunct, scope)
        if tables <= {fact.name}:
            pre.append(conjunct)
        elif tables == {build_name}:
            build.append(conjunct)
        else:
            post.append(conjunct)

    def bind_all(nodes):
        if not nodes:
            return None
        bound = binder.boolean(nodes[0])
        for node in nodes[1:]:
            bound = engine.And(bound, binder.boolean(node))
        return bound

    return bind_all(pre), bind_all(build), bind_all(post)


def _plan_join(stmt: ast.SelectStmt, tables: list[Table], scope: _Scope):
    """Pick fact/build sides and extract the join condition."""
    if len(tables) == 1:
        return None, tables[0], stmt.where

    if stmt.join_on is not None:
        left_table, left_name = scope.resolve(stmt.join_on.left)
        right_table, right_name = scope.resolve(stmt.join_on.right)
        where_node = stmt.where
    else:
        condition, where_node = _extract_equijoin(stmt.where, scope)
        if condition is None:
            raise SqlError(
                "two-table query needs an equality join condition")
        (left_table, left_name), (right_table, right_name) = condition
    if left_table is right_table:
        raise SqlError("join condition must link the two tables")

    # The paper's plan shape: build on the smaller relation.
    if left_table.tuple_count <= right_table.tuple_count:
        build_table, build_key = left_table, left_name
        fact, probe_key = right_table, right_name
    else:
        build_table, build_key = right_table, right_name
        fact, probe_key = left_table, left_name
    spec = JoinSpec(build_table=build_table.name, build_key=build_key,
                    probe_key=probe_key, payload=())
    return (spec, fact, where_node)


def _extract_equijoin(node, scope: _Scope):
    """Find (and remove) one cross-table equality in an AND-tree."""
    if node is None:
        return None, None
    if isinstance(node, ast.Cmp) and node.op == "=":
        if (isinstance(node.left, ast.ColRef)
                and isinstance(node.right, ast.ColRef)):
            left = scope.resolve(node.left)
            right = scope.resolve(node.right)
            if left[0] is not right[0]:
                return (left, right), None
        return None, node
    if isinstance(node, ast.AndE):
        found, rest_left = _extract_equijoin(node.left, scope)
        if found is not None:
            return found, (node.right if rest_left is None
                           else ast.AndE(rest_left, node.right))
        found, rest_right = _extract_equijoin(node.right, scope)
        if found is not None:
            return found, (node.left if rest_right is None
                           else ast.AndE(node.left, rest_right))
    return None, node


def _referenced_build_columns(stmt: ast.SelectStmt, scope: _Scope,
                              build_name: str,
                              join_spec: JoinSpec) -> tuple[str, ...]:
    """Build-side columns the query's outputs/predicates actually use."""
    names: list[str] = []

    def walk(node) -> None:
        if isinstance(node, ast.ColRef):
            table, column = scope.resolve(node)
            if table.name == build_name and column not in names:
                names.append(column)
            return
        if isinstance(node, (ast.BinOp, ast.AndE, ast.OrE, ast.Cmp)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, ast.BetweenE):
            walk(node.expr)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, ast.LikeE):
            walk(node.expr)
        elif isinstance(node, ast.InE):
            walk(node.expr)
            for element in node.items:
                walk(element)
        elif isinstance(node, ast.CaseE):
            walk(node.condition)
            walk(node.then)
            walk(node.otherwise)
        elif isinstance(node, ast.FuncCall) and node.arg is not None:
            walk(node.arg)

    for item in stmt.items:
        walk(item.expr)
    if stmt.where is not None:
        walk(stmt.where)
    for ref in stmt.group_by:
        walk(ref)
    return tuple(n for n in names if n != join_spec.build_key)


def _item_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColRef):
        return item.expr.name
    return f"expr_{index + 1}"


def _bind_row_query(stmt, binder, predicate, post_predicate, join_spec,
                    fact) -> Query:
    select = []
    for index, item in enumerate(stmt.items):
        bound = binder.scalar(item.expr)
        select.append((_item_name(item, index), bound.realize()))
    order_by = None
    if stmt.order_by is not None:
        order_by = _order_target(stmt, select)
    if join_spec is not None:
        join_spec = _with_payload(stmt, binder.scope, join_spec)
    return Query(table=fact.name, predicate=predicate,
                 post_predicate=post_predicate, join=join_spec,
                 select=tuple(select), order_by=order_by,
                 descending=stmt.descending, limit=stmt.limit,
                 distinct=stmt.distinct, name="sql-query")


def _order_target(stmt, select) -> str:
    ref = stmt.order_by
    names = [name for name, __ in select]
    if ref.name in names:
        return ref.name
    raise SqlError(
        f"ORDER BY column {ref.name!r} must appear in the select list")


def _with_payload(stmt, scope, join_spec) -> JoinSpec:
    payload = _referenced_build_columns(stmt, scope, join_spec.build_table,
                                        join_spec)
    return JoinSpec(build_table=join_spec.build_table,
                    build_key=join_spec.build_key,
                    probe_key=join_spec.probe_key, payload=payload,
                    build_predicate=join_spec.build_predicate)


def _bind_aggregate_query(stmt, binder, agg_binder, predicate,
                          post_predicate, join_spec, fact,
                          group_names) -> Query:
    items: list[_AggItem] = []
    for index, item in enumerate(stmt.items):
        name = _item_name(item, index)
        if isinstance(item.expr, ast.ColRef):
            __, column = binder.scope.resolve(item.expr)
            if column not in group_names:
                raise SqlError(
                    f"column {column!r} must appear in GROUP BY or inside "
                    "an aggregate")
            continue  # produced automatically as a group key
        evaluator, scale = agg_binder.bind_item(item.expr)
        items.append(_AggItem(name=name, evaluator=evaluator, scale=scale))
    if not items:
        raise SqlError("an aggregate query needs at least one aggregate")

    def finalize(values: dict) -> dict:
        out = {}
        for agg_item in items:
            value = agg_item.evaluator(values)
            if agg_item.scale > 0 and value is not None:
                value = value / (10 ** agg_item.scale)
            out[agg_item.name] = value
        return out

    if join_spec is not None:
        join_spec = _with_payload(stmt, binder.scope, join_spec)
    return Query(table=fact.name, predicate=predicate,
                 post_predicate=post_predicate, join=join_spec,
                 aggregates=tuple(agg_binder.specs),
                 group_by=group_names or None,
                 finalize=finalize, name="sql-query")
