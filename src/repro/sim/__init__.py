"""Discrete-event simulation kernel.

A small SimPy-like engine: generator-based processes yield
:class:`~repro.sim.engine.Event` objects and are resumed when those events
fire. Shared hardware (flash channels, the device DRAM bus, the host
interface, CPU cores) is modeled with :class:`~repro.sim.resources.Resource`
and :class:`~repro.sim.resources.Bandwidth`, both of which track busy-time
integrals so utilization and energy can be derived after a run.
"""

from repro.sim.engine import Event, Process, Simulator
from repro.sim.resources import Bandwidth, Resource, seize
from repro.sim.stats import BusyTracker
from repro.sim.trace import TraceMark, Tracer

__all__ = [
    "Bandwidth",
    "BusyTracker",
    "Event",
    "Process",
    "Resource",
    "Simulator",
    "TraceMark",
    "Tracer",
    "seize",
]
