"""Event loop and process machinery for the simulation kernel.

The design is a deliberately small subset of SimPy:

* :class:`Simulator` owns virtual time and a priority queue of pending work.
* :class:`Event` is a one-shot occurrence; callbacks run when it settles.
* :class:`Process` wraps a generator. The generator yields events; the
  process resumes with the event's value when the event fires. A process is
  itself an event that succeeds with the generator's return value, so
  processes can wait on each other and compose with ``yield from``.

Determinism: work scheduled for the same instant runs in scheduling order
(a monotonically increasing sequence number breaks ties), so simulations are
fully reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Type of the generators that drive processes.
ProcessGenerator = Generator["Event", Any, Any]

_PENDING = object()


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) settles it
    exactly once, after which its callbacks are scheduled to run at the
    current simulation instant.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled_value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has been settled (succeeded or failed)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True when the event settled successfully."""
        return self.triggered and self._ok

    @property
    def value(self) -> Any:
        """The value the event settled with (raises if still pending)."""
        if self._value is _PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Settle the event successfully, scheduling its callbacks."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._value = value
        self.sim._push(self.sim.now, self._run_callbacks)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Settle the event with an exception; waiters will re-raise it."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._ok = False
        self._value = exception
        self.sim._push(self.sim.now, self._run_callbacks)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks or ():
            callback(self)

    def _fire(self) -> None:
        """Settle a scheduled timeout in place (no succeed() round-trip)."""
        self._value = self._scheduled_value
        self._run_callbacks()


class Process(Event):
    """A running generator coroutine, itself awaitable as an event.

    The wrapped generator yields :class:`Event` instances. When a yielded
    event succeeds, the generator is resumed with the event's value; when it
    fails, the exception is thrown into the generator. When the generator
    returns, the process event succeeds with the return value.
    """

    __slots__ = ("name", "_generator")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: str = "process"):
        super().__init__(sim)
        self.name = name
        self._generator = generator
        sim._push(sim.now, self._start)

    def _start(self) -> None:
        self._step(send_value=None, throw=None)

    def _resume(self, event: Event) -> None:
        if event.ok:
            self._step(send_value=event.value, throw=None)
        else:
            self._step(send_value=None, throw=event.value)

    def _step(self, send_value: Any, throw: Optional[BaseException]) -> None:
        try:
            if throw is None:
                target = self._generator.send(send_value)
            else:
                target = self._generator.throw(throw)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as exc:  # propagate into waiters, or abort the run
            if self.callbacks:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event")
        if target.callbacks is None:
            # Already fired and callbacks consumed: resume next tick.
            self.sim._push(self.sim.now, lambda: self._resume(target))
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """Owns virtual time and runs the event loop."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        #: Optional :class:`repro.sim.trace.Tracer`; when set, every
        #: resource reports its level changes here. Attach at any time —
        #: also mid-run — via :meth:`attach_tracer`.
        self.tracer = None
        #: Optional :class:`repro.faults.FaultPlan`; when set, fault sites
        #: throughout the stack consult it (and no-op when it is None).
        self.faults = None
        #: Optional :class:`repro.obs.Observability`; when set, span and
        #: metric instrumentation sites throughout the stack record here
        #: (and are skipped with a single ``is None`` test when unset).
        self.obs = None
        #: Resources that have registered for tracing (see
        #: :meth:`register_traceable`); lets a late-attached tracer backfill
        #: current occupancy levels.
        self._traceables: list = []

    def register_traceable(self, resource) -> None:
        """Remember a resource so a later :meth:`attach_tracer` can seed it."""
        self._traceables.append(resource)

    def attach_tracer(self, tracer) -> None:
        """Install ``tracer``, seeding it with every live resource's level.

        Safe to call *after* device construction (and even mid-run): each
        already-built resource currently holding units gets an initial
        level-change record at the current instant, so busy integrals and
        gantt lanes computed from the attach point onward are correct.
        """
        self.tracer = tracer
        for resource in self._traceables:
            if resource._in_use:
                tracer.record(resource.name, self._now, resource._in_use)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Jump an *idle* simulator's clock forward to ``when``.

        The parallel runtime (:mod:`repro.runtime`) keeps one simulator per
        execution lane; between batches it re-aligns every lane clock to the
        parent world's clock so all absolute event times stay identical to a
        single-simulator run. Only an idle simulator may jump: with events
        pending the jump would reorder them against the new origin.
        """
        if when < self._now:
            raise SimulationError(
                f"advance_to would move time backwards: {when} < {self._now}")
        if self._queue:
            raise SimulationError("advance_to on a simulator with pending work")
        self._now = when

    def event(self) -> Event:
        """Create a fresh, externally-triggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        event = Event(self)
        event._scheduled_value = value
        self._push(self._now + delay, event._fire)
        return event

    def process(self, generator: ProcessGenerator,
                name: str = "process") -> Process:
        """Start a generator as a process; returns the awaitable process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds once every given event has succeeded.

        The gate's value is the list of the component events' values, in the
        order given. If any component fails, the gate fails with that error.
        """
        events = list(events)
        gate = Event(self)
        if not events:
            gate.succeed([])
            return gate
        values: list[Any] = [None] * len(events)
        state = {"left": len(events)}

        def arm(index: int, event: Event) -> None:
            def on_done(ev: Event) -> None:
                if not ev.ok:
                    if not gate.triggered:
                        gate.fail(ev.value)
                    return
                values[index] = ev.value
                state["left"] -= 1
                if state["left"] == 0 and not gate.triggered:
                    gate.succeed(values)

            if event.triggered:
                on_done(event)
            else:
                event.callbacks.append(on_done)

        for i, ev in enumerate(events):
            arm(i, ev)
        return gate

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or virtual time passes ``until``).

        Returns the final virtual time.
        """
        queue = self._queue
        heappop = heapq.heappop
        while queue:
            when = queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            if when < self._now:
                raise SimulationError("time went backwards")
            work = heappop(queue)[2]
            self._now = when
            work()
        return self._now

    # -- internal ---------------------------------------------------------

    def _push(self, when: float, work: Callable[[], None]) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (when, self._sequence, work))
