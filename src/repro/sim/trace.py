"""Optional resource tracing: utilization timelines for any simulation.

Attach a :class:`Tracer` to a simulator at any time — before or after
building devices, even mid-run::

    sim = Simulator()
    ... build devices, maybe run a while ...
    sim.attach_tracer(Tracer())
    ... run a query ...
    print(sim.tracer.gantt(width=60))

Resources register with the simulator as they are built;
:meth:`Simulator.attach_tracer` backfills the current occupancy of each
one, so a tracer attached after device construction still produces correct
busy integrals from the attach point onward. (Plain ``sim.tracer = Tracer()``
also works — resources look the tracer up dynamically on every level
change — but skips the occupancy backfill.)

Every :class:`~repro.sim.resources.Resource` (and the lane inside every
:class:`~repro.sim.resources.Bandwidth`) reports its level changes, so the
tracer can reconstruct per-resource utilization over time — the "why is
the device CPU the bottleneck" picture behind the paper's §4.2 analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

#: Unicode blocks for utilization levels 0..8.
_BLOCKS = " ▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class LevelChange:
    """One recorded usage-level change."""

    time: float
    level: float


@dataclass(frozen=True)
class TraceMark:
    """One discrete timeline event (fault fired, retry, fallback...)."""

    time: float
    label: str
    detail: str = ""


class Tracer:
    """Records per-resource usage levels over virtual time."""

    def __init__(self):
        self._events: dict[str, list[LevelChange]] = defaultdict(list)
        self._marks: list[TraceMark] = []

    def record(self, resource: str, time: float, level: float) -> None:
        """Record that ``resource``'s in-use level changed at ``time``."""
        self._events[resource].append(LevelChange(time=time, level=level))

    def mark(self, time: float, label: str, detail: str = "") -> None:
        """Record a discrete timeline event (fault, retry, fallback...)."""
        self._marks.append(TraceMark(time=time, label=label, detail=detail))

    def marks(self, label: str | None = None) -> list[TraceMark]:
        """Recorded marks, optionally filtered to one label."""
        if label is None:
            return list(self._marks)
        return [mark for mark in self._marks if mark.label == label]

    def format_marks(self) -> str:
        """One line per mark: ``@time label detail`` (degraded-run audit)."""
        if not self._marks:
            return "(no marks)"
        return "\n".join(
            f"@{mark.time:.6g}s {mark.label}"
            + (f" {mark.detail}" if mark.detail else "")
            for mark in self._marks)

    def resources(self) -> list[str]:
        """Names of every traced resource, sorted."""
        return sorted(self._events)

    def events(self, resource: str) -> list[LevelChange]:
        """The raw level-change sequence of one resource."""
        return list(self._events.get(resource, ()))

    def busy_fraction(self, resource: str, start: float, end: float,
                      capacity: float = 1.0) -> float:
        """Average utilization of ``resource`` over [start, end)."""
        if end <= start:
            return 0.0
        integral = 0.0
        level = 0.0
        cursor = start
        for change in self._events.get(resource, ()):
            when = min(max(change.time, start), end)
            if when > cursor:
                integral += level * (when - cursor)
                cursor = when
            if change.time <= end:
                level = change.level
        integral += level * (end - cursor)
        return integral / ((end - start) * capacity)

    def timeline(self, resource: str, start: float, end: float,
                 buckets: int, capacity: float = 1.0) -> list[float]:
        """Per-bucket average utilization across [start, end)."""
        if buckets < 1 or end <= start:
            return []
        width = (end - start) / buckets
        return [self.busy_fraction(resource, start + i * width,
                                   start + (i + 1) * width, capacity)
                for i in range(buckets)]

    def gantt(self, start: float = 0.0, end: float | None = None,
              width: int = 60,
              capacities: dict[str, float] | None = None) -> str:
        """ASCII utilization chart, one row per resource."""
        if end is None:
            end = max((events[-1].time
                       for events in self._events.values() if events),
                      default=0.0)
        if end <= start:
            return "(no traced activity)"
        capacities = capacities or {}
        label_width = max((len(name) for name in self._events), default=4)
        lines = [f"{'resource':<{label_width}}  "
                 f"[{start:.4g}s .. {end:.4g}s]"]
        for name in self.resources():
            capacity = capacities.get(name, 1.0)
            cells = self.timeline(name, start, end, width, capacity)
            bar = "".join(
                _BLOCKS[min(8, max(0, round(value * 8)))] for value in cells)
            mean = self.busy_fraction(name, start, end, capacity)
            lines.append(f"{name:<{label_width}}  {bar}  {mean:>4.0%}")
        return "\n".join(lines)
