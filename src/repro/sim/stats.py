"""Busy-time accounting for simulated hardware resources.

Energy and utilization reporting both need "how many units of this resource
were in use, integrated over virtual time". :class:`BusyTracker` maintains
that integral incrementally as usage levels change.
"""

from __future__ import annotations


class BusyTracker:
    """Integrates a usage level (units in use) over virtual time."""

    def __init__(self):
        self._level = 0.0
        self._last_change = 0.0
        self._integral = 0.0

    @property
    def level(self) -> float:
        """Units currently in use."""
        return self._level

    def set_level(self, now: float, level: float) -> None:
        """Record that the usage level changed to ``level`` at time ``now``."""
        self._integral += self._level * (now - self._last_change)
        self._last_change = now
        self._level = level

    def adjust(self, now: float, delta: float) -> None:
        """Change the usage level by ``delta`` at time ``now``."""
        self.set_level(now, self._level + delta)

    def busy_time(self, now: float) -> float:
        """Unit-seconds of usage accumulated up to ``now``.

        For a capacity-1 resource this is simply its busy time; for an
        N-unit resource divide by N for average utilization.
        """
        return self._integral + self._level * (now - self._last_change)

    def utilization(self, now: float, capacity: float) -> float:
        """Average fraction of ``capacity`` in use over [0, now]."""
        if now <= 0:
            return 0.0
        return self.busy_time(now) / (now * capacity)
