"""Shared-hardware primitives: counted resources and bandwidth pipes.

Simulated hardware contention all flows through two primitives:

* :class:`Resource` — N interchangeable units granted FIFO (CPU cores,
  flash channels). Holders acquire, hold for some service time, release.
* :class:`Bandwidth` — a link that moves bytes at a fixed rate, one transfer
  at a time (the device DRAM bus, the host interface). Serialization of
  transfers is exactly how the paper describes the shared DRAM bus inside
  the Samsung device ("data transfers from the flash channels to the DRAM
  are serialized").
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator
from repro.sim.stats import BusyTracker

#: When True, :func:`seize` grants an uncontended resource synchronously and
#: waits on a single timeout instead of routing the grant through an extra
#: event round-trip. This halves the event count of the hot uncontended
#: acquire/hold/release pattern without moving a single virtual timestamp:
#: the unit is taken at the same ``sim.now`` either way, so busy integrals,
#: utilization, and completion times are identical (proven by
#: ``tests/property/test_sim_fastpath_equivalence.py``). The flag exists so
#: the equivalence suite can diff fast-path-on against fast-path-off runs.
FAST_PATH = True


class Resource:
    """``capacity`` interchangeable units, granted in FIFO order."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.busy = BusyTracker()
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        sim.register_traceable(self)

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Event that succeeds when a unit is granted to the caller."""
        grant = self.sim.event()
        if self._in_use < self.capacity:
            self._take()
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one held unit; hands it to the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Unit changes hands: usage level is unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1
            self.busy.adjust(self.sim.now, -1)
            self._trace()

    def utilization(self, now: Optional[float] = None) -> float:
        """Average fraction of capacity in use so far."""
        return self.busy.utilization(self.sim.now if now is None else now,
                                     self.capacity)

    def _take(self) -> None:
        self._in_use += 1
        self.busy.adjust(self.sim.now, +1)
        self._trace()

    def _trace(self) -> None:
        # Simulator always defines ``tracer``; plain attribute access keeps
        # this per-grant hook off the dynamic-lookup path.
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.record(self.name, self.sim.now, self._in_use)


def seize(resource: Resource, hold_time: float,
          obs_span=None) -> Generator[Event, None, None]:
    """Acquire ``resource``, hold it for ``hold_time``, then release.

    Use from inside a process as ``yield from seize(cpu, cycles / hz)``.

    When the resource has a free unit (which implies no waiters — a release
    always hands the unit straight to the head waiter), the grant is taken
    synchronously and the whole acquire/hold/release collapses into one
    timeout event. Virtual timestamps are unchanged: the unit is taken at
    the same ``sim.now`` the immediate grant would have recorded.

    ``obs_span``, when given, is an unentered :class:`repro.obs.Span` that
    brackets only the *hold* (after the grant, before the release). On a
    capacity-1 resource holds are exclusive, so these spans never overlap —
    each such resource becomes one clean chrome-trace lane. The span never
    schedules events, so virtual timing is unaffected.
    """
    if FAST_PATH and resource._in_use < resource.capacity:
        resource._take()
        try:
            if obs_span is None:
                yield resource.sim.timeout(hold_time)
            else:
                with obs_span:
                    yield resource.sim.timeout(hold_time)
        finally:
            resource.release()
        return
    yield resource.request()
    try:
        if obs_span is None:
            yield resource.sim.timeout(hold_time)
        else:
            with obs_span:
                yield resource.sim.timeout(hold_time)
    finally:
        resource.release()


class Bandwidth:
    """A link moving bytes at a fixed rate, one transfer at a time.

    ``transfer(nbytes)`` is a process-composable generator: it waits for the
    link, occupies it for ``nbytes / rate`` seconds, then releases it.
    Back-to-back transfers therefore serialize, which is what makes a
    capacity-1 :class:`Bandwidth` the right model for the paper's shared
    device DRAM bus and for the host SAS link.
    """

    def __init__(self, sim: Simulator, bytes_per_second: float,
                 name: str = "link"):
        if bytes_per_second <= 0:
            raise SimulationError(f"link {name!r} needs a positive rate")
        self.sim = sim
        self.rate = float(bytes_per_second)
        self.name = name
        self._lane = Resource(sim, 1, name=name)
        self._bytes_moved = 0

    @property
    def bytes_moved(self) -> int:
        """Total bytes transferred so far."""
        return self._bytes_moved

    @property
    def busy(self) -> BusyTracker:
        """Busy tracker of the underlying lane."""
        return self._lane.busy

    def service_time(self, nbytes: int) -> float:
        """Seconds the link is occupied moving ``nbytes``."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer on {self.name!r}")
        return nbytes / self.rate

    def transfer(self, nbytes: int,
                 obs_span=None) -> Generator[Event, None, None]:
        """Move ``nbytes`` across the link (process-composable).

        ``bytes_moved`` is credited on *completion*, not on request: a
        transfer aborted mid-flight (fault injection, closed generator)
        must not inflate the byte counters that utilization reports and
        the energy model derive from.

        ``obs_span`` brackets the occupancy of the link, as in
        :func:`seize`.
        """
        yield from seize(self._lane, self.service_time(nbytes), obs_span)
        self._bytes_moved += nbytes

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of time the link has been busy so far."""
        return self._lane.utilization(now)
