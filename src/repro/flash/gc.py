"""Pluggable garbage-collection victim-selection policies.

The FTL's collector (:meth:`repro.flash.ftl.PageMappedFtl._collect`) is
mechanism — read the victim's live pages, relocate them, erase. *Which*
block to collect is policy, and the classic design space (EagleTree maps
it) has two poles:

* **Greedy** — the block with the fewest valid pages. Minimal relocation
  work *right now*; provably optimal under uniform random overwrites, but
  under skew it keeps collecting hot blocks whose remaining live pages
  were about to be invalidated anyway.
* **Cost-benefit** — weigh the reclaimed space against the relocation
  cost *and* the block's age (virtual time since its last program, in
  write-sequence units). Old blocks hold cold data whose relocation is
  not wasted; young blocks are deferred until churn has hollowed them
  out. The score is the eNVy/LFS form ``(1 - u) / (1 + u) * age`` with
  ``u`` the valid-page fraction. An optional **wear-leveling bias**
  divides the score by the block's erase count, steering erases toward
  less-worn blocks and bounding the wear spread.

Policies are deterministic: greedy resolves ties toward the lowest block
number (bit-identical to the historical linear scan), and cost-benefit
breaks exact score ties from its own seeded PRNG stream, so a fixed
workload picks the same victims run after run.

Select a policy per device via :class:`repro.flash.ssd.SsdSpec`
(``gc_policy="greedy" | "cost-benefit"``, ``gc_wear_leveling``,
``gc_seed``) or pass a :class:`GcPolicy` instance to
:class:`~repro.flash.ftl.PageMappedFtl` directly.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import DeviceError

if TYPE_CHECKING:
    from repro.flash.ftl import PageMappedFtl, _Die

#: Block key: (channel, chip, block).
BlockKey = tuple[int, int, int]


class GcPolicy:
    """Strategy interface: pick the next GC victim block on one die."""

    #: Wire name (stable: reports, configs, and specs use it).
    name = "base"

    def pick_victim(self, ftl: "PageMappedFtl",
                    die: "_Die") -> Optional[BlockKey]:
        """The next victim on ``die``, or None when nothing is gained.

        Implementations see the FTL's candidate ("sealed") block set and
        its valid-count / age / wear indexes; they must never return the
        active block, the spare, a free block, or a block already being
        collected, and must return None when every candidate is fully
        valid (collecting it would reclaim nothing).
        """
        raise NotImplementedError


class GreedyGcPolicy(GcPolicy):
    """Min-valid-pages victim selection (the historical default).

    Delegates to the FTL's valid-count heap index, which resolves ties
    toward the lowest block number — bit-identical victims to the original
    O(blocks_per_chip) linear scan, at O(log candidates) per pick.
    """

    name = "greedy"

    def pick_victim(self, ftl: "PageMappedFtl",
                    die: "_Die") -> Optional[BlockKey]:
        return ftl._min_valid_victim(die)


class CostBenefitGcPolicy(GcPolicy):
    """Age-weighted cost-benefit selection with optional wear leveling.

    ``score = (1 - u) / (1 + u) * (1 + age)`` where ``u`` is the block's
    valid fraction and ``age`` is the write-sequence distance since the
    block was last programmed; with ``wear_leveling`` the score is divided
    by ``1 + wear_weight * erase_count`` so heavily-cycled blocks are
    deprioritized. Exact score ties draw from a PRNG seeded at
    construction, keeping the pick deterministic for a fixed workload.
    """

    name = "cost-benefit"

    def __init__(self, wear_leveling: bool = True,
                 wear_weight: float = 0.05, seed: int = 0):
        if wear_weight < 0:
            raise DeviceError(f"negative wear weight {wear_weight}")
        self.wear_leveling = wear_leveling
        self.wear_weight = wear_weight
        self.seed = seed
        self._rng = random.Random(seed)

    def pick_victim(self, ftl: "PageMappedFtl",
                    die: "_Die") -> Optional[BlockKey]:
        geometry = ftl.geometry
        pages_per_block = geometry.pages_per_block
        write_seq = ftl._write_seq
        best: Optional[BlockKey] = None
        best_score = 0.0
        for block in sorted(die.sealed):
            key = (die.channel, die.chip, block)
            if key in ftl._gc_victims:
                continue
            valid = ftl._valid_count.get(key, 0)
            if valid >= pages_per_block:
                continue  # collecting a fully-valid block gains nothing
            u = valid / pages_per_block
            age = write_seq - ftl._block_write_seq.get(key, 0)
            score = (1.0 - u) / (1.0 + u) * (1.0 + age)
            if self.wear_leveling:
                wear = ftl.stats.block_erases.get(ftl._flat_block(key), 0)
                score /= 1.0 + self.wear_weight * wear
            if best is None or score > best_score or (
                    score == best_score and self._rng.random() < 0.5):
                best, best_score = key, score
        return best


def make_gc_policy(policy: Union[str, GcPolicy, None], *,
                   wear_leveling: bool = False,
                   seed: int = 0) -> GcPolicy:
    """Resolve a policy spec (wire name, instance, or None) to a policy."""
    if policy is None:
        return GreedyGcPolicy()
    if isinstance(policy, GcPolicy):
        return policy
    if policy == GreedyGcPolicy.name:
        return GreedyGcPolicy()
    if policy in (CostBenefitGcPolicy.name, "costbenefit"):
        return CostBenefitGcPolicy(wear_leveling=wear_leveling, seed=seed)
    raise DeviceError(
        f"unknown GC policy {policy!r}; expected "
        f"{GreedyGcPolicy.name!r} or {CostBenefitGcPolicy.name!r}")
