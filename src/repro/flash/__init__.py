"""SSD device substrate.

A functional model of the modern SSD the paper's §2 describes:

* :mod:`repro.flash.geometry` — NAND organization and timing parameters.
* :mod:`repro.flash.nand` — the flash array itself; stores real bytes and
  enforces NAND semantics (erase-before-program, page-granular I/O).
* :mod:`repro.flash.ftl` — page-mapping Flash Translation Layer with
  round-robin channel striping and greedy garbage collection.
* :mod:`repro.flash.controller` — flash memory controller: per-channel
  interleaving, DMA over the single shared DRAM bus (the serialization the
  paper identifies as the internal bottleneck), and ECC verification.
* :mod:`repro.flash.interface` — host interface standards (SATA/SAS/PCIe)
  and the Figure-1 bandwidth roadmap.
* :mod:`repro.flash.ssd` / :mod:`repro.flash.hdd` — the composed devices.
"""

from repro.flash.geometry import NandGeometry, NandTiming
from repro.flash.hdd import Hdd, HddSpec
from repro.flash.interface import (
    INTERFACE_ROADMAP,
    INTERFACES,
    HostInterfaceSpec,
    bandwidth_trend,
)
from repro.flash.nand import NandArray, PageState
from repro.flash.ftl import FtlStats, PageMappedFtl
from repro.flash.gc import (
    CostBenefitGcPolicy,
    GcPolicy,
    GreedyGcPolicy,
    make_gc_policy,
)
from repro.flash.controller import FlashController
from repro.flash.dram import DeviceDram
from repro.flash.ssd import DevicePower, Ssd, SsdSpec

__all__ = [
    "CostBenefitGcPolicy",
    "DevicePower",
    "DeviceDram",
    "FlashController",
    "FtlStats",
    "GcPolicy",
    "GreedyGcPolicy",
    "make_gc_policy",
    "Hdd",
    "HddSpec",
    "HostInterfaceSpec",
    "INTERFACES",
    "INTERFACE_ROADMAP",
    "NandArray",
    "NandGeometry",
    "NandTiming",
    "PageMappedFtl",
    "PageState",
    "Ssd",
    "SsdSpec",
    "bandwidth_trend",
]
