"""The composed SSD device.

An :class:`Ssd` wires together the NAND array, FTL, flash controller, device
DRAM, and a host interface link. Two read paths mirror the paper's core
contrast:

* :meth:`Ssd.host_read` — the conventional path: flash -> device DRAM ->
  host interface. Externally visible bandwidth is capped by the interface
  (550 MB/s effective on the paper's SAS-6Gbps HBA).
* :meth:`Ssd.internal_read` — the Smart SSD path: flash -> device DRAM only,
  capped by the shared DRAM bus (1,560 MB/s). The 2.8x between the two is
  the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.errors import DeviceError, DeviceTimeoutError
from repro.faults import (
    DEAD_COMMAND_TIMEOUT_S,
    SITE_DEVICE_DEAD,
    SITE_DEVICE_SLOW,
    SITE_UNCLEAN_SHUTDOWN,
    FaultPlan,
    check_fault,
)
from repro.flash.controller import FlashController
from repro.flash.dram import DeviceDram
from repro.flash.ftl import PageMappedFtl
from repro.flash.gc import make_gc_policy
from repro.flash.geometry import NandGeometry, NandTiming
from repro.flash.interface import INTERFACES, HostInterfaceSpec
from repro.flash.nand import NandArray
from repro.sim import Bandwidth, Event, Simulator
from repro.units import GIB, MB, MIB


@dataclass(frozen=True)
class DevicePower:
    """Power draw of one storage device, watts."""

    idle_w: float
    active_w: float

    def __post_init__(self):
        if self.idle_w < 0 or self.active_w < self.idle_w:
            raise DeviceError("active power must be >= idle power >= 0")


@dataclass(frozen=True)
class SsdSpec:
    """Configuration of one SSD device.

    Defaults describe the paper's 400 GB SAS SSD / Smart SSD prototype:
    SAS-6Gbps interface (550 MB/s effective), 1,560 MB/s internal DRAM bus.
    """

    name: str = "sas-ssd"
    geometry: NandGeometry = field(default_factory=NandGeometry)
    timing: NandTiming = field(default_factory=NandTiming)
    interface: HostInterfaceSpec = INTERFACES["sas6"]
    dram_bus_rate: float = 1560 * MB
    dram_nbytes: int = 1 * GIB
    dram_reserved_nbytes: int = 64 * MIB
    power: DevicePower = DevicePower(idle_w=1.3, active_w=8.0)
    verify_ecc: bool = True
    #: FTL garbage-collection victim policy: ``"greedy"`` (min valid
    #: pages; the historical default) or ``"cost-benefit"`` (age-weighted,
    #: see :mod:`repro.flash.gc`).
    gc_policy: str = "greedy"
    #: Bias cost-benefit selection away from heavily-erased blocks
    #: (ignored by the greedy policy).
    gc_wear_leveling: bool = False
    #: PRNG seed for the policy's deterministic tie-breaking stream.
    gc_seed: int = 0


class Ssd:
    """A simulated SSD: real bytes behind timed read/write paths."""

    def __init__(self, sim: Simulator, spec: SsdSpec | None = None):
        self.sim = sim
        self.spec = spec or SsdSpec()
        self.nand = NandArray(self.spec.geometry)
        self.ftl = PageMappedFtl(
            self.spec.geometry, self.nand,
            gc_policy=make_gc_policy(
                self.spec.gc_policy,
                wear_leveling=self.spec.gc_wear_leveling,
                seed=self.spec.gc_seed),
            sim=sim)
        self.controller = FlashController(
            sim, self.spec.geometry, self.spec.timing, self.nand, self.ftl,
            dram_bus_rate=self.spec.dram_bus_rate,
            verify_ecc=self.spec.verify_ecc)
        self.dram = DeviceDram(self.spec.dram_nbytes,
                               self.spec.dram_reserved_nbytes)
        self.interface = Bandwidth(sim, self.spec.interface.effective_rate,
                                   name=f"{self.spec.name}-interface")
        self._next_lpn = 0
        # Firmware-resident per-page statistics, keyed by extent first LPN
        # (see repro.storage.stats). Device scan programs consult these to
        # skip non-qualifying NAND page reads.
        self._extent_stats: dict[int, "object"] = {}
        if getattr(sim, "faults", None) is not None:
            self.install_fault_plan(sim.faults)

    # -- fault injection -------------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> None:
        """Wire a fault plan into this device (and the shared simulator)."""
        self.sim.faults = plan
        self.nand.faults = plan

    def power_cycle(self, clean: bool = True) -> int:
        """Power the device off and on again (untimed maintenance action).

        A clean cycle is a no-op — firmware flushed its map. An unclean one
        (``clean=False``, or a fault plan firing at ``ftl.unclean_shutdown``)
        drops the FTL's volatile state and replays the out-of-band recovery
        scan. Returns the number of live pages remapped (0 when clean).
        """
        decision = check_fault(getattr(self.sim, "faults", None),
                               SITE_UNCLEAN_SHUTDOWN, time=self.sim.now,
                               device=self.spec.name)
        if clean and decision is None:
            return 0
        self.ftl.unclean_shutdown()
        recovered = self.ftl.recover()
        if self.sim.tracer is not None:
            self.sim.tracer.mark(self.sim.now, "ftl-recovery",
                                 f"{self.spec.name}: {recovered} pages")
        return recovered

    def _maybe_slow(self, command: str) -> Generator[Event, None, None]:
        """Inject a straggler delay when the fault plan marks us slow."""
        decision = check_fault(getattr(self.sim, "faults", None),
                               SITE_DEVICE_SLOW, time=self.sim.now,
                               device=self.spec.name, command=command)
        if decision is None:
            return
        yield self.sim.timeout(
            float(decision.payload.get("delay", DEAD_COMMAND_TIMEOUT_S)))

    def _check_alive(self, command: str) -> Generator[Event, None, None]:
        """Raise (after a timeout's worth of waiting) when the device is
        marked dead by the fault plan."""
        decision = check_fault(getattr(self.sim, "faults", None),
                               SITE_DEVICE_DEAD, time=self.sim.now,
                               device=self.spec.name, command=command)
        if decision is None:
            return
        yield self.sim.timeout(
            float(decision.payload.get("delay", DEAD_COMMAND_TIMEOUT_S)))
        raise DeviceTimeoutError(
            f"{self.spec.name}: no reply to {command} command")

    @property
    def page_nbytes(self) -> int:
        """Logical/flash page size."""
        return self.spec.geometry.page_nbytes

    @property
    def capacity_pages(self) -> int:
        """Exported logical capacity in pages."""
        return self.ftl.logical_capacity_pages

    # -- space management -----------------------------------------------------

    def allocate_extent(self, page_count: int) -> int:
        """Reserve a run of logical pages; returns the first LPN."""
        if page_count < 1:
            raise DeviceError(f"bad extent size {page_count}")
        if self._next_lpn + page_count > self.capacity_pages:
            raise DeviceError(
                f"extent of {page_count} pages exceeds device capacity")
        first = self._next_lpn
        self._next_lpn += page_count
        return first

    def load_extent(self, pages: Sequence[bytes]) -> int:
        """Bulk-load pages without charging simulated time (data staging).

        Loading the database is setup, not the experiment; the paper's runs
        start from already-loaded heap tables ("cold" only means an empty
        buffer pool). Returns the extent's first LPN.
        """
        first = self.allocate_extent(len(pages))
        self.ftl.write_bulk(first, list(pages))
        return first

    def register_extent_stats(self, first_lpn: int, stats) -> None:
        """Attach per-page statistics to an extent (untimed metadata).

        ``stats`` is a :class:`repro.storage.stats.ExtentStats`; its page
        count must match the extent it describes. Registration is free in
        simulated time — stats are computed while the table loads, exactly
        like the page encode itself.
        """
        if stats.page_count < 1:
            raise DeviceError("extent stats must cover at least one page")
        self._extent_stats[first_lpn] = stats

    def extent_stats(self, first_lpn: int):
        """Statistics registered for the extent at ``first_lpn``, or None."""
        return self._extent_stats.get(first_lpn)

    # -- timed I/O paths --------------------------------------------------------

    def internal_read(self, lpns: Sequence[int]) -> Generator[Event, None, list[bytes]]:
        """Smart-SSD path: flash -> device DRAM (no interface crossing)."""
        pages = yield from self.controller.read_lpns(lpns)
        return pages

    def host_read(self, lpns: Sequence[int]) -> Generator[Event, None, list[bytes]]:
        """Conventional path: flash -> device DRAM -> host interface."""
        yield from self._check_alive("read")
        pages = yield from self.controller.read_lpns(lpns)
        nbytes = len(lpns) * self.page_nbytes
        yield from self.interface.transfer(
            nbytes, self._interface_span("interface.read", nbytes))
        return pages

    def host_write(self, lpns: Sequence[int],
                   pages: Sequence[bytes]) -> Generator[Event, None, None]:
        """Timed host write: interface -> device DRAM -> flash."""
        nbytes = len(lpns) * self.page_nbytes
        yield from self.interface.transfer(
            nbytes, self._interface_span("interface.write", nbytes))
        yield from self.controller.write_lpns(lpns, pages)
        # Keep firmware page statistics current: recompute the entry for
        # every rewritten page (untimed maintenance, like the FTL map).
        if self._extent_stats:
            for lpn, page in zip(lpns, pages):
                for first, stats in self._extent_stats.items():
                    if first <= lpn < first + stats.page_count:
                        stats.refresh(lpn - first, page)
                        break

    def transfer_to_host(self, nbytes: int) -> Generator[Event, None, None]:
        """Move result bytes (not pages) to the host — the GET reply path."""
        yield from self.interface.transfer(
            nbytes, self._interface_span("interface.reply", nbytes))

    def _interface_span(self, name: str, nbytes: int):
        """Hold-span for an interface crossing, or None when obs is off."""
        obs = self.sim.obs
        if obs is None:
            return None
        obs.metrics.counter("interface.bytes", device=self.spec.name).inc(nbytes)
        return obs.span(name, track=self.interface.name, bytes=nbytes)

    # -- untimed access ---------------------------------------------------------

    def read_page_direct(self, lpn: int) -> bytes:
        """Fetch page bytes without simulated time (assertions, debugging)."""
        return self.ftl.read(lpn)

    # -- reporting ----------------------------------------------------------------

    def internal_read_rate(self) -> float:
        """Sustained internal sequential read bandwidth, bytes/s (Table 2)."""
        return self.controller.internal_read_rate()

    def external_read_rate(self) -> float:
        """Sustained host-visible sequential read bandwidth, bytes/s."""
        return min(self.internal_read_rate(),
                   self.spec.interface.effective_rate)
