"""Device DRAM: capacity accounting for the in-SSD runtime.

The Smart SSD runtime grants session memory (hash tables, result buffers)
out of the device DRAM left over after the FTL map and page buffers. The
model tracks allocations so a session that asks for more than the device has
fails with :class:`~repro.errors.DeviceResourceError` — the paper's "hash
table for the R table fits in memory" precondition becomes checkable.
"""

from __future__ import annotations

from repro.errors import DeviceResourceError
from repro.units import MIB


class DeviceDram:
    """Byte-accurate allocation bookkeeping for device DRAM."""

    def __init__(self, capacity_nbytes: int, reserved_nbytes: int = 64 * MIB):
        """``reserved_nbytes`` models firmware/FTL/page-buffer overhead."""
        if capacity_nbytes <= reserved_nbytes:
            raise DeviceResourceError(
                f"DRAM of {capacity_nbytes} bytes cannot cover the "
                f"{reserved_nbytes}-byte firmware reservation")
        self.capacity_nbytes = capacity_nbytes
        self.reserved_nbytes = reserved_nbytes
        self._allocations: dict[int, int] = {}
        self._next_handle = 1

    @property
    def available_nbytes(self) -> int:
        """Bytes still grantable to sessions."""
        used = sum(self._allocations.values())
        return self.capacity_nbytes - self.reserved_nbytes - used

    @property
    def allocated_nbytes(self) -> int:
        """Bytes currently granted to sessions."""
        return sum(self._allocations.values())

    def allocate(self, nbytes: int) -> int:
        """Grant ``nbytes``; returns a handle for :meth:`free`."""
        if nbytes < 0:
            raise DeviceResourceError(f"negative allocation {nbytes}")
        if nbytes > self.available_nbytes:
            raise DeviceResourceError(
                f"device DRAM exhausted: want {nbytes}, "
                f"have {self.available_nbytes}")
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = nbytes
        return handle

    def free(self, handle: int) -> None:
        """Release a previous grant."""
        if handle not in self._allocations:
            raise DeviceResourceError(f"unknown DRAM handle {handle}")
        del self._allocations[handle]
