"""Page-mapping Flash Translation Layer.

The FTL maps Logical Page Numbers (the host's view; one logical page is one
8 KiB DBMS page) to Physical Page Numbers in the NAND array. Key behaviours:

* **Channel striping** — consecutive writes rotate round-robin across every
  die of every channel, so a sequentially-written extent is read back with
  all channels working in parallel. This is the chip-level and channel-level
  interleaving §2 of the paper describes.
* **Out-of-place updates** — rewriting an LPN invalidates the old flash page
  and programs a fresh one.
* **Policy-driven garbage collection with a per-die spare block** — when a
  die runs low on free pages, a victim block chosen by the configured
  :class:`~repro.flash.gc.GcPolicy` (greedy min-valid by default;
  age-weighted cost-benefit with a wear-leveling bias as the alternative)
  is collected: its live pages are relocated (into normal free slots, or
  into the die's dedicated spare block under emergency pressure) and the
  block erased. The spare guarantees that *any* victim is collectible, so
  the die can always compact as long as it holds invalid pages.
* **Pressure steering** — live data drifts between dies under random
  overwrites (an overwrite invalidates the old copy's die but programs the
  round-robin target die), so writes shed from squeezed dies to the die
  with the most reclaimable space.
* **Sustained-GC indexes** — a persistent PPN -> LPN reverse map (updated
  on program/invalidate, so relocation never rebuilds it from the forward
  map) and a per-die lazy min-heap over sealed blocks' valid counts (so
  victim selection never linear-scans the die). Both are pure indexes:
  victims, relocations, and stats are bit-identical to the original
  scan-based collector.

Stats expose host writes vs. GC relocations (the write-amplification
factor the tests check) plus per-block erase counts — the wear histogram
and spread the leveling policy is gated on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Union

from repro.errors import DeviceError, FlashError, ProgramFailError
from repro.flash.gc import GcPolicy, GreedyGcPolicy, make_gc_policy
from repro.flash.geometry import NandGeometry
from repro.flash.nand import NandArray, PageState

#: Fraction of raw capacity reserved as over-provisioning.
DEFAULT_OVERPROVISION = 0.08

#: GC maintenance keeps at least this many blocks' worth of free pages per
#: die (beyond the dedicated spare block).
GC_HEADROOM_BLOCKS = 2

#: Consecutive NAND program failures tolerated for one logical write before
#: the device gives up (each failed attempt burns one physical slot).
PROGRAM_RETRY_LIMIT = 8


@dataclass
class FtlStats:
    """Write/GC accounting."""

    host_writes: int = 0
    gc_relocations: int = 0
    erases: int = 0
    program_retries: int = 0    # NAND program failures retried on a new slot
    recoveries: int = 0        # unclean-shutdown recovery scans completed
    recovered_pages: int = 0    # live pages remapped by those scans
    #: Erase count per flat block id (wear). Like real firmware's per-block
    #: cycle counters this survives power loss — it is accounting, not the
    #: volatile map state an unclean shutdown drops.
    block_erases: dict[int, int] = field(default_factory=dict)

    @property
    def write_amplification(self) -> float:
        """(host + GC writes) / host writes; 1.0 when GC never ran."""
        if self.host_writes == 0:
            return 1.0
        return (self.host_writes + self.gc_relocations) / self.host_writes

    @property
    def wear_histogram(self) -> dict[int, int]:
        """Erase-count -> number of blocks at that count (erased blocks
        only; :meth:`PageMappedFtl.wear_histogram` includes the zeros)."""
        histogram: dict[int, int] = {}
        for count in self.block_erases.values():
            histogram[count] = histogram.get(count, 0) + 1
        return histogram


@dataclass
class _Die:
    """Per-die allocation state."""

    channel: int
    chip: int
    free_blocks: list[int] = field(default_factory=list)
    active_block: int = -1
    next_page: int = 0
    spare_block: int = -1   # always-erased GC relocation reserve
    invalid_pages: int = 0  # reclaimable pages on this die
    #: GC candidate blocks: written and rotated out of the active slot
    #: (i.e. not active, not spare, not free). Victims come from here.
    sealed: set[int] = field(default_factory=set)
    #: Lazy min-heap of (valid_count, block) over sealed blocks. Entries
    #: are pushed at seal time and on every invalidation; stale entries
    #: (count moved on, block erased/reused) are discarded on pop.
    victim_heap: list[tuple[int, int]] = field(default_factory=list)


class PageMappedFtl:
    """LPN -> PPN mapping with striped allocation and pluggable GC."""

    def __init__(self, geometry: NandGeometry, nand: NandArray,
                 overprovision: float = DEFAULT_OVERPROVISION,
                 gc_policy: Union[GcPolicy, str, None] = None,
                 sim=None):
        if not 0.0 <= overprovision < 0.5:
            raise DeviceError(f"unreasonable overprovision {overprovision}")
        if geometry.blocks_per_chip < GC_HEADROOM_BLOCKS + 2:
            raise DeviceError("geometry too small for the GC reserve")
        self.geometry = geometry
        self.nand = nand
        self.stats = FtlStats()
        self.gc_policy = make_gc_policy(gc_policy)
        #: Optional simulator binding; only consulted for observability
        #: (``sim.obs``) — the FTL itself is untimed firmware state.
        self._sim = sim
        self._map: dict[int, int] = {}
        #: Persistent PPN -> LPN reverse index (exact inverse of _map),
        #: maintained on program/invalidate so GC relocation is O(live
        #: pages) instead of O(map size) per collected block.
        self._rmap: dict[int, int] = {}
        #: Write sequence of each block's most recent program — the age
        #: signal the cost-benefit policy weighs.
        self._block_write_seq: dict[tuple[int, int, int], int] = {}
        self._valid_count: dict[tuple[int, int, int], int] = {}
        self._dies: list[_Die] = []
        self._die_of: dict[tuple[int, int], _Die] = {}
        # Channel-minor order: consecutive writes land on consecutive
        # *channels* (then rotate chips), so even short sequential runs
        # read back with full channel-level parallelism (§2).
        for chip in range(geometry.chips_per_channel):
            for channel in range(geometry.channels):
                die = _Die(channel, chip,
                           free_blocks=list(range(geometry.blocks_per_chip)))
                die.spare_block = die.free_blocks.pop()
                self._dies.append(die)
                self._die_of[(channel, chip)] = die
        self._next_die = 0
        self._gc_victims: set[tuple[int, int, int]] = set()
        self._write_seq = 0
        self._needs_recovery = False
        # Exported capacity: the requested over-provisioning, floored by a
        # hard per-die reserve (the spare block plus GC headroom plus one
        # block of slack).
        per_die_reserve = (GC_HEADROOM_BLOCKS + 2) * geometry.pages_per_block
        reserve_pages = max(
            int(geometry.total_pages * overprovision),
            geometry.dies * per_die_reserve)
        if reserve_pages >= geometry.total_pages:
            raise DeviceError("geometry too small for the GC reserve")
        self.logical_capacity_pages = geometry.total_pages - reserve_pages

    # -- host-facing operations --------------------------------------------

    def lookup(self, lpn: int) -> int:
        """PPN currently holding ``lpn``; raises if unmapped."""
        self._check_recovered()
        try:
            return self._map[lpn]
        except KeyError:
            raise DeviceError(f"LPN {lpn} is not mapped") from None

    def lookup_many(self, lpns) -> list[int]:
        """PPNs for a whole I/O unit of LPNs; raises on the first unmapped."""
        self._check_recovered()
        mapping = self._map
        try:
            return [mapping[lpn] for lpn in lpns]
        except KeyError:
            for lpn in lpns:
                self.lookup(lpn)
            raise  # unreachable: the loop above raises the DeviceError

    def is_mapped(self, lpn: int) -> bool:
        """True when ``lpn`` currently holds data."""
        return lpn in self._map

    @property
    def mapped_pages(self) -> int:
        """Number of live logical pages."""
        return len(self._map)

    def read(self, lpn: int) -> bytes:
        """Read the bytes stored at a logical page."""
        return self.nand.read(self.lookup(lpn))

    def write(self, lpn: int, data: bytes) -> int:
        """Write a logical page out-of-place; returns the new PPN."""
        self._check_recovered()
        self._check_lpn(lpn)
        if (lpn not in self._map
                and self.mapped_pages >= self.logical_capacity_pages):
            raise DeviceError("device is at logical capacity")
        old = self._map.get(lpn)
        if old is not None:
            self._invalidate_ppn(old)
        die = self._choose_die()
        # Maintain headroom *before* programming, so GC never encounters a
        # programmed page without a logical owner.
        self._maybe_collect(die)
        ppn = self._program_on_die(die, data, lpn)
        self.stats.host_writes += 1
        self._map[lpn] = ppn
        return ppn

    def write_bulk(self, first_lpn: int, pages: list[bytes]) -> None:
        """Write a run of fresh logical pages with one Python loop.

        Produces byte-for-byte the FTL and NAND state the equivalent
        sequence of :meth:`write` calls would — same PPNs (so the same
        channel striping and therefore the same simulated read timing),
        same write sequence numbers, same out-of-band metadata, same
        stats — while skipping the per-page call fan-out. The fast path
        only applies when no :meth:`write` call could deviate from pure
        round-robin allocation: no fault plan armed, every LPN unmapped,
        capacity ample, and every die keeping GC headroom throughout the
        load. Anything else falls back to the per-page loop.
        """
        self._check_recovered()
        n = len(pages)
        if n == 0:
            return
        self._check_lpn(first_lpn)
        dies = self._dies
        die_count = len(dies)
        geometry = self.geometry
        pages_per_block = geometry.pages_per_block
        headroom = 2 * pages_per_block
        # Pure round-robin assigns each die an exact share; free pages only
        # shrink during the load, so checking the *final* headroom covers
        # every intermediate _choose_die / _maybe_collect decision.
        shares = [n // die_count] * die_count
        for k in range(n % die_count):
            shares[(self._next_die + k) % die_count] += 1
        fast = (self.nand.faults is None
                and len(self._map) + n <= self.logical_capacity_pages
                and all(self._die_free_pages(die) - shares[i] > headroom
                        for i, die in enumerate(dies))
                and not any(first_lpn + k in self._map for k in range(n)))
        if not fast:
            for offset, data in enumerate(pages):
                self.write(first_lpn + offset, data)
            return
        page_nbytes = geometry.page_nbytes
        nand = self.nand
        data_map, state_map, oob_map = nand._data, nand._state, nand._oob
        valid = self._valid_count
        lpn_map = self._map
        rmap = self._rmap
        block_seq = self._block_write_seq
        seq = self._write_seq
        index = self._next_die
        blocks_per_chip = geometry.blocks_per_chip
        chips_per_channel = geometry.chips_per_channel
        for offset, data in enumerate(pages):
            if len(data) != page_nbytes:
                raise FlashError(
                    f"program of {len(data)} bytes; page is {page_nbytes}")
            die = dies[index]
            index = (index + 1) % die_count
            if die.active_block < 0 or die.next_page >= pages_per_block:
                if die.active_block >= 0:
                    self._seal_block(die, die.active_block)
                die.active_block = die.free_blocks.pop(0)
                die.next_page = 0
            ppn = (((die.channel * chips_per_channel + die.chip)
                    * blocks_per_chip + die.active_block)
                   * pages_per_block + die.next_page)
            die.next_page += 1
            seq += 1
            data_map[ppn] = bytes(data)
            state_map[ppn] = PageState.PROGRAMMED
            oob_map[ppn] = (first_lpn + offset, seq)
            key = (die.channel, die.chip, die.active_block)
            valid[key] = valid.get(key, 0) + 1
            block_seq[key] = seq
            lpn = first_lpn + offset
            lpn_map[lpn] = ppn
            rmap[ppn] = lpn
        nand.programs += n
        self.stats.host_writes += n
        self._write_seq = seq
        self._next_die = index

    def trim(self, lpn: int) -> None:
        """Discard a logical page (TRIM); no-op if unmapped."""
        self._check_recovered()
        old = self._map.pop(lpn, None)
        if old is not None:
            self._invalidate_ppn(old)

    # -- allocation & garbage collection ------------------------------------

    def _choose_die(self) -> _Die:
        die = self._dies[self._next_die]
        self._next_die = (self._next_die + 1) % len(self._dies)
        if self._die_free_pages(die) > 2 * self.geometry.pages_per_block:
            return die
        # The round-robin target is squeezed: shed to the die with the most
        # immediately-free space, breaking ties toward reclaimable space so
        # GC can make room.
        return max(self._dies,
                   key=lambda d: (self._die_free_pages(d), d.invalid_pages))

    def _die_free_pages(self, die: _Die) -> int:
        free = len(die.free_blocks) * self.geometry.pages_per_block
        if die.active_block >= 0:
            free += self.geometry.pages_per_block - die.next_page
        return free

    def _program_on_die(self, die: _Die, data: bytes, lpn: int) -> int:
        """Program ``data`` for ``lpn``, retrying past failed NAND slots.

        The page carries (LPN, sequence) out-of-band metadata so
        :meth:`recover` can rebuild the map after an unclean shutdown. A
        failed program leaves its slot INVALID (reclaimed at erase) and the
        write moves to the next slot, as real firmware does.
        """
        for __ in range(PROGRAM_RETRY_LIMIT):
            ppn = self._take_slot(die)
            self._write_seq += 1
            try:
                self.nand.program(ppn, data, oob=(lpn, self._write_seq))
            except ProgramFailError:
                self.stats.program_retries += 1
                die.invalid_pages += 1
                continue
            block_key = (die.channel, die.chip,
                         self.geometry.unflatten(ppn)[2])
            self._valid_count[block_key] = (
                self._valid_count.get(block_key, 0) + 1)
            self._block_write_seq[block_key] = self._write_seq
            self._rmap[ppn] = lpn
            return ppn
        raise DeviceError(
            f"die ({die.channel},{die.chip}) failed {PROGRAM_RETRY_LIMIT} "
            "consecutive page programs")

    def _take_slot(self, die: _Die) -> int:
        if (die.active_block < 0
                or die.next_page >= self.geometry.pages_per_block):
            if not die.free_blocks:
                self._collect(die)
            if not die.free_blocks:
                raise DeviceError(
                    f"die ({die.channel},{die.chip}) has no free blocks")
            if die.active_block >= 0:
                self._seal_block(die, die.active_block)
            die.active_block = die.free_blocks.pop(0)
            die.next_page = 0
        ppn = self.geometry.ppn(die.channel, die.chip, die.active_block,
                                die.next_page)
        die.next_page += 1
        return ppn

    def _maybe_collect(self, die: _Die) -> None:
        """Compact until the die has GC headroom (or nothing to reclaim)."""
        target = GC_HEADROOM_BLOCKS * self.geometry.pages_per_block
        while self._die_free_pages(die) < target:
            if not self._collect(die):
                break

    def _collect(self, die: _Die) -> bool:
        """GC one block on ``die``; returns False when nothing is gained.

        The die's dedicated spare block makes every victim collectible:
        when normal free slots cannot hold the victim's live pages, the
        spare becomes the active block (its erased pages are the relocation
        destination) and the erased victim becomes the new spare.
        """
        victim = self._pick_victim(die)
        if victim is None:
            return False
        channel, chip, block = victim
        self._gc_victims.add(victim)
        try:
            first = self.geometry.ppn(channel, chip, block, 0)
            states = [self.nand.state(ppn)
                      for ppn in range(first,
                                       first + self.geometry.pages_per_block)]
            live_ppns = [first + offset for offset, state in enumerate(states)
                         if state is PageState.PROGRAMMED]
            invalid_in_block = sum(state is PageState.INVALID
                                   for state in states)
            used_spare = False
            if live_ppns and self._die_free_pages(die) < len(live_ppns):
                # Emergency: rotate the spare in as the active block. The
                # retired active block's unwritten tail is recovered when
                # that block is eventually erased.
                if die.active_block >= 0:
                    self._seal_block(die, die.active_block)
                die.active_block = die.spare_block
                die.next_page = 0
                die.spare_block = -1
                used_spare = True
            for ppn in live_ppns:
                lpn = self._rmap.get(ppn)
                if lpn is None:
                    raise FlashError(f"orphan programmed page {ppn}")
                data = self.nand.read(ppn)
                self._invalidate_ppn(ppn)
                new_ppn = self._program_on_die(die, data, lpn)
                self.stats.gc_relocations += 1
                self._map[lpn] = new_ppn
            self.nand.erase_block(channel, chip, block)
            # The erase reclaims the block's pre-GC invalid pages plus the
            # ones relocation just created.
            die.invalid_pages -= invalid_in_block + len(live_ppns)
            self._valid_count.pop(victim, None)
            self._block_write_seq.pop(victim, None)
            die.sealed.discard(block)
            if used_spare or die.spare_block < 0:
                die.spare_block = block
            else:
                die.free_blocks.append(block)
            self.stats.erases += 1
            flat = self._flat_block(victim)
            wear = self.stats.block_erases.get(flat, 0) + 1
            self.stats.block_erases[flat] = wear
            obs = None if self._sim is None else self._sim.obs
            if obs is not None:
                obs.span("ftl.gc", track="ftl",
                         policy=self.gc_policy.name, channel=channel,
                         chip=chip, block=block,
                         relocated=len(live_ppns),
                         reclaimed=invalid_in_block,
                         used_spare=used_spare).__enter__().finish()
                obs.metrics.counter("ftl.gc.erases").inc()
                if live_ppns:
                    obs.metrics.counter("ftl.gc.relocations").inc(
                        len(live_ppns))
                obs.metrics.histogram("ftl.wear").observe(wear)
        finally:
            self._gc_victims.discard(victim)
        return True

    def _pick_victim(self, die: _Die) -> tuple[int, int, int] | None:
        """The configured policy's victim for ``die`` (None: no gain)."""
        return self.gc_policy.pick_victim(self, die)

    def _seal_block(self, die: _Die, block: int) -> None:
        """Retire ``block`` from the active slot into the GC candidate set."""
        die.sealed.add(block)
        heapq.heappush(
            die.victim_heap,
            (self._valid_count.get((die.channel, die.chip, block), 0),
             block))

    def _min_valid_victim(self, die: _Die) -> tuple[int, int, int] | None:
        """The sealed block with the fewest valid pages (greedy pick).

        Pops the die's lazy heap past stale entries (count moved on, block
        erased or re-activated, block mid-collection); ties resolve to the
        lowest block number — exactly the original linear scan's answer.
        """
        heap = die.victim_heap
        while heap:
            valid, block = heap[0]
            key = (die.channel, die.chip, block)
            if (block not in die.sealed
                    or key in self._gc_victims
                    or self._valid_count.get(key, 0) != valid):
                heapq.heappop(heap)
                continue
            # Collecting a fully-valid block makes no progress; leave the
            # entry for when invalidations shrink it.
            if valid >= self.geometry.pages_per_block:
                return None
            return key
        return None

    def _flat_block(self, key: tuple[int, int, int]) -> int:
        """Flatten a (channel, chip, block) key to one array-wide id."""
        channel, chip, block = key
        return ((channel * self.geometry.chips_per_channel + chip)
                * self.geometry.blocks_per_chip + block)

    # -- wear reporting -----------------------------------------------------

    def wear_histogram(self) -> dict[int, int]:
        """Erase-count -> block count over *all* physical blocks."""
        histogram = dict(self.stats.wear_histogram)
        total = self.geometry.dies * self.geometry.blocks_per_chip
        never = total - len(self.stats.block_erases)
        if never:
            histogram[0] = histogram.get(0, 0) + never
        return histogram

    def wear_spread(self) -> int:
        """Max minus min per-block erase count (never-erased counts as 0)."""
        erases = self.stats.block_erases
        if not erases:
            return 0
        total = self.geometry.dies * self.geometry.blocks_per_chip
        low = 0 if len(erases) < total else min(erases.values())
        return max(erases.values()) - low

    # -- crash recovery -------------------------------------------------------

    def unclean_shutdown(self) -> None:
        """Simulate power loss: every volatile structure is gone.

        The DRAM-resident map, valid counts, and allocation cursors are
        dropped; only the NAND array (data + out-of-band metadata) survives.
        All host-facing operations raise until :meth:`recover` runs.
        """
        self._map = {}
        self._rmap = {}
        self._valid_count = {}
        self._block_write_seq = {}
        self._gc_victims = set()
        for die in self._dies:
            die.free_blocks = []
            die.active_block = -1
            die.next_page = 0
            die.spare_block = -1
            die.invalid_pages = 0
            die.sealed = set()
            die.victim_heap = []
        self._needs_recovery = True

    def recover(self) -> int:
        """Rebuild the logical map by scanning NAND out-of-band metadata.

        For every programmed page the stored (LPN, sequence) pair is read
        back; the highest sequence wins an LPN and stale or orphaned pages
        are invalidated. Die allocation state is rebuilt conservatively:
        any block holding data is sealed (its erased tail is reclaimed by a
        later GC erase) and one fully-erased block per die becomes the new
        spare. Returns the number of live pages remapped.
        """
        geometry = self.geometry
        best: dict[int, tuple[int, int]] = {}   # lpn -> (seq, ppn)
        stale: list[int] = []
        for ppn in self.nand.programmed_ppns():
            meta = self.nand.oob(ppn)
            if meta is None:
                stale.append(ppn)
                continue
            lpn, seq = meta
            current = best.get(lpn)
            if current is None or seq > current[0]:
                if current is not None:
                    stale.append(current[1])
                best[lpn] = (seq, ppn)
            else:
                stale.append(ppn)
        for ppn in stale:
            self.nand.invalidate(ppn)

        self._map = {lpn: ppn for lpn, (__, ppn) in best.items()}
        self._rmap = {ppn: lpn for lpn, ppn in self._map.items()}
        self._valid_count = {}
        for ppn in self._map.values():
            channel, chip, block, __ = geometry.unflatten(ppn)
            key = (channel, chip, block)
            self._valid_count[key] = self._valid_count.get(key, 0) + 1
        # Rebuild each block's age signal from the surviving out-of-band
        # sequence numbers (max over the block's programmed pages).
        self._block_write_seq = {}
        for ppn in self.nand.programmed_ppns():
            meta = self.nand.oob(ppn)
            if meta is None:
                continue
            channel, chip, block, __ = geometry.unflatten(ppn)
            key = (channel, chip, block)
            seq = meta[1]
            if seq > self._block_write_seq.get(key, 0):
                self._block_write_seq[key] = seq

        for die in self._dies:
            erased_blocks = []
            invalid = 0
            for block in range(geometry.blocks_per_chip):
                first = geometry.ppn(die.channel, die.chip, block, 0)
                states = [self.nand.state(ppn)
                          for ppn in range(first,
                                           first + geometry.pages_per_block)]
                if all(state is PageState.ERASED for state in states):
                    erased_blocks.append(block)
                invalid += sum(state is PageState.INVALID
                               for state in states)
            if not erased_blocks:
                raise FlashError(
                    f"die ({die.channel},{die.chip}) has no erased block "
                    "left for the GC spare; device unrecoverable")
            die.spare_block = erased_blocks.pop()
            die.free_blocks = erased_blocks
            die.active_block = -1
            die.next_page = 0
            die.invalid_pages = invalid
            # Every non-erased block is conservatively sealed: with no
            # active block, they are all GC candidates again.
            die.sealed = (set(range(geometry.blocks_per_chip))
                          - set(die.free_blocks) - {die.spare_block})
            die.victim_heap = [
                (self._valid_count.get((die.channel, die.chip, block), 0),
                 block)
                for block in sorted(die.sealed)]
            heapq.heapify(die.victim_heap)

        self._write_seq = max((seq for seq, __ in best.values()), default=0)
        self._needs_recovery = False
        recovered = len(self._map)
        self.stats.recoveries += 1
        self.stats.recovered_pages += recovered
        return recovered

    def _check_recovered(self) -> None:
        if self._needs_recovery:
            raise DeviceError(
                "FTL volatile state lost by unclean shutdown; "
                "recover() must run first")

    def _invalidate_ppn(self, ppn: int) -> None:
        self.nand.invalidate(ppn)
        self._rmap.pop(ppn, None)
        channel, chip, block, __ = self.geometry.unflatten(ppn)
        key = (channel, chip, block)
        count = self._valid_count.get(key, 1) - 1
        self._valid_count[key] = count
        die = self._die_of[(channel, chip)]
        die.invalid_pages += 1
        if block in die.sealed:
            # Keep the victim index current: sealed counts only ever
            # shrink, so the freshest (smallest) entry is authoritative.
            heapq.heappush(die.victim_heap, (count, block))

    def _check_lpn(self, lpn: int) -> None:
        if lpn < 0:
            raise DeviceError(f"negative LPN {lpn}")
