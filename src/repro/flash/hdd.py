"""Rotating-disk baseline device.

Models the paper's 146 GB 10K-RPM SAS HDD: positioning (seek + rotational
latency) for discontiguous accesses, then media-rate transfer. Sequential
heap scans pay positioning once and stream afterwards, so the device is
~6.5x slower than the SAS SSD on Q6-style scans — the gap behind Table 3's
energy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

from repro.errors import DeviceError
from repro.flash.ssd import DevicePower
from repro.sim import Bandwidth, Event, Resource, Simulator
from repro.storage.page import PAGE_SIZE
from repro.units import GIB, MB, MS


@dataclass(frozen=True)
class HddSpec:
    """Configuration of the HDD baseline.

    The 85 MB/s sustained media rate reflects a 2.5-inch 146 GB 10K SAS
    drive of the paper's era; with it a 90 GB LINEITEM scan takes ~18 min,
    matching the four-digit Q6 elapsed time in Table 3.
    """

    name: str = "sas-hdd"
    capacity_nbytes: int = 146 * GIB
    media_rate: float = 85 * MB
    avg_seek_time: float = 3.8 * MS
    rpm: int = 10_000
    page_nbytes: int = PAGE_SIZE
    power: DevicePower = DevicePower(idle_w=7.0, active_w=11.5)

    @property
    def avg_rotational_latency(self) -> float:
        """Half a revolution, seconds."""
        return 0.5 * 60.0 / self.rpm

    @property
    def positioning_time(self) -> float:
        """Average seek + rotational latency for a random access."""
        return self.avg_seek_time + self.avg_rotational_latency


class Hdd:
    """A simulated disk: real bytes behind a seek + stream timing model."""

    def __init__(self, sim: Simulator, spec: HddSpec | None = None):
        self.sim = sim
        self.spec = spec or HddSpec()
        self._pages: dict[int, bytes] = {}
        self._next_lpn = 0
        self._head_lpn: int | None = None
        # One actuator: concurrent requests serialize at the device.
        self.actuator = Resource(sim, 1, name=f"{self.spec.name}-actuator")
        self.interface = Bandwidth(sim, self.spec.media_rate,
                                   name=f"{self.spec.name}-interface")
        self.seeks = 0

    @property
    def page_nbytes(self) -> int:
        """Logical page size."""
        return self.spec.page_nbytes

    @property
    def capacity_pages(self) -> int:
        """Logical capacity in pages."""
        return self.spec.capacity_nbytes // self.spec.page_nbytes

    # -- space management -----------------------------------------------------

    def allocate_extent(self, page_count: int) -> int:
        """Reserve a run of logical pages; returns the first LPN."""
        if page_count < 1:
            raise DeviceError(f"bad extent size {page_count}")
        if self._next_lpn + page_count > self.capacity_pages:
            raise DeviceError(
                f"extent of {page_count} pages exceeds device capacity")
        first = self._next_lpn
        self._next_lpn += page_count
        return first

    def load_extent(self, pages: Sequence[bytes]) -> int:
        """Bulk-load pages without charging simulated time."""
        first = self.allocate_extent(len(pages))
        for offset, data in enumerate(pages):
            if len(data) != self.page_nbytes:
                raise DeviceError(f"page of {len(data)} bytes")
            self._pages[first + offset] = bytes(data)
        return first

    # -- timed I/O ----------------------------------------------------------------

    def host_read(self, lpns: Sequence[int]) -> Generator[Event, None, list[bytes]]:
        """Timed read: position if discontiguous, then stream at media rate.

        The positioning decision happens *after* the actuator is acquired —
        queued requests that turn out to be sequential with their
        predecessor pay no seek.
        """
        lpns = list(lpns)
        for lpn in lpns:
            if lpn not in self._pages:
                raise DeviceError(f"read of unwritten LPN {lpn}")
        yield self.actuator.request()
        try:
            yield self.sim.timeout(self._service_time(lpns))
            if lpns:
                self._head_lpn = lpns[-1] + 1
        finally:
            self.actuator.release()
        return [self._pages[lpn] for lpn in lpns]

    def host_write(self, lpns: Sequence[int],
                   pages: Sequence[bytes]) -> Generator[Event, None, None]:
        """Timed write (same positioning + stream model as reads)."""
        lpns = list(lpns)
        for data in pages:
            if len(data) != self.page_nbytes:
                raise DeviceError(f"page of {len(data)} bytes")
        yield self.actuator.request()
        try:
            yield self.sim.timeout(self._service_time(lpns))
            for lpn, data in zip(lpns, pages):
                self._pages[lpn] = bytes(data)
            if lpns:
                self._head_lpn = lpns[-1] + 1
        finally:
            self.actuator.release()

    def _service_time(self, lpns: list[int]) -> float:
        """Positioning (if the head must move) plus streaming time."""
        hold = 0.0
        if lpns and lpns[0] != self._head_lpn:
            hold += self.spec.positioning_time
            self.seeks += 1
        hold += len(lpns) * self.page_nbytes / self.spec.media_rate
        return hold

    # -- untimed access ---------------------------------------------------------

    def read_page_direct(self, lpn: int) -> bytes:
        """Fetch page bytes without simulated time."""
        try:
            return self._pages[lpn]
        except KeyError:
            raise DeviceError(f"read of unwritten LPN {lpn}") from None

    # -- reporting ----------------------------------------------------------------

    def external_read_rate(self) -> float:
        """Sustained sequential read bandwidth, bytes/s."""
        return self.spec.media_rate
