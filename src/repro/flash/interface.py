"""Host interface standards and the Figure-1 bandwidth roadmap.

Figure 1 of the paper plots host-interface bandwidth against SSD-internal
aggregate bandwidth, both relative to the 2007 interface speed (375 MB/s),
with Samsung projections beyond 2012 opening a ~10x gap. The roadmap data
here regenerates that figure; the per-standard specs feed the device models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.units import MB


@dataclass(frozen=True)
class HostInterfaceSpec:
    """One host bus standard."""

    name: str
    raw_rate: float        # line rate, bytes/s
    effective_rate: float  # post-overhead payload rate, bytes/s

    def __post_init__(self):
        if self.effective_rate <= 0 or self.effective_rate > self.raw_rate:
            raise DeviceError(f"bad rates for interface {self.name}")


#: Interface catalog. Effective rates reflect protocol overheads; the paper
#: measures 550 MB/s through its SAS-6Gbps HBA (Table 2).
INTERFACES: dict[str, HostInterfaceSpec] = {
    "sata2": HostInterfaceSpec("sata2", raw_rate=300 * MB,
                               effective_rate=275 * MB),
    "sata3": HostInterfaceSpec("sata3", raw_rate=600 * MB,
                               effective_rate=550 * MB),
    "sas6": HostInterfaceSpec("sas6", raw_rate=600 * MB,
                              effective_rate=550 * MB),
    "sas12": HostInterfaceSpec("sas12", raw_rate=1200 * MB,
                               effective_rate=1100 * MB),
    "pcie2x4": HostInterfaceSpec("pcie2x4", raw_rate=2000 * MB,
                                 effective_rate=1600 * MB),
    "pcie3x4": HostInterfaceSpec("pcie3x4", raw_rate=3940 * MB,
                                 effective_rate=3200 * MB),
}

#: Year -> (host interface MB/s, SSD internal MB/s). 2007-2012 match the
#: paper's narrative (375 MB/s interface baseline; 2012 device: 550 external,
#: 1,560 internal); later years follow the "internal grows faster" projection
#: that Figure 1 attributes to Samsung.
INTERFACE_ROADMAP: list[tuple[int, float, float]] = [
    (2007, 375.0, 500.0),
    (2008, 375.0, 640.0),
    (2009, 550.0, 800.0),
    (2010, 550.0, 1000.0),
    (2011, 550.0, 1250.0),
    (2012, 550.0, 1560.0),
    (2013, 750.0, 2400.0),
    (2014, 1100.0, 3700.0),
    (2015, 1100.0, 5800.0),
    (2016, 1100.0, 9000.0),
    (2017, 1100.0, 11000.0),
]


def bandwidth_trend() -> list[dict[str, float]]:
    """Figure-1 series: bandwidths relative to the 2007 interface speed.

    Returns one row per year with ``interface_x`` and ``internal_x``
    multipliers (2007 interface = 1.0).
    """
    baseline = INTERFACE_ROADMAP[0][1]
    return [
        {
            "year": year,
            "interface_mb_s": host,
            "internal_mb_s": internal,
            "interface_x": host / baseline,
            "internal_x": internal / baseline,
            "gap_x": internal / host,
        }
        for year, host, internal in INTERFACE_ROADMAP
    ]
