"""Flash memory controller: interleaving, DMA, and ECC.

The controller is where the paper's two key internal mechanisms live:

* **Channel/chip interleaving** — a multi-page read is split by channel and
  the channels proceed in parallel, each pipelining array senses across its
  dies (§2: "the flash controller uses chip-level and channel-level
  interleaving techniques").
* **Shared DRAM bus** — every page crossing from a channel into device DRAM
  serializes on a single :class:`~repro.sim.resources.Bandwidth` ("all the
  flash channels share access to the DRAM. Hence, data transfers from the
  flash channels to the DRAM (via DMA) are serialized"). Its 1,560 MB/s rate
  is the Table-2 internal sequential read bandwidth and the hard ceiling on
  what a Smart SSD program can stream.

ECC is modeled functionally: each page's payload CRC is verified on read
(inline hardware, so no extra simulated time), so injected corruption
surfaces as :class:`~repro.errors.StorageError` exactly where a real
controller would raise a media error.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Generator, Sequence

from repro.errors import UncorrectableMediaError
from repro.faults import SITE_NAND_READ, check_fault
from repro.flash.ftl import PageMappedFtl
from repro.flash.geometry import NandGeometry, NandTiming
from repro.flash.nand import NandArray
from repro.sim import Bandwidth, Event, Resource, Simulator, seize
from repro.storage.page import verify_pages

#: ECC read-retry rounds (re-sense with shifted thresholds) before a page
#: is declared uncorrectable.
ECC_RETRY_LIMIT = 4


class FlashController:
    """Schedules NAND operations onto channels and the shared DRAM bus."""

    def __init__(self, sim: Simulator, geometry: NandGeometry,
                 timing: NandTiming, nand: NandArray, ftl: PageMappedFtl,
                 dram_bus_rate: float, verify_ecc: bool = True,
                 ecc_retry_limit: int = ECC_RETRY_LIMIT):
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.nand = nand
        self.ftl = ftl
        self.verify_ecc = verify_ecc
        self.ecc_retry_limit = ecc_retry_limit
        self.dram_bus = Bandwidth(sim, dram_bus_rate, name="device-dram-bus")
        self.channels = [
            Resource(sim, 1, name=f"flash-channel-{i}")
            for i in range(geometry.channels)
        ]
        self.ecc_pages_checked = 0
        self.ecc_retries = 0
        self.ecc_uncorrectable = 0

    # -- timed operations ----------------------------------------------------

    def read_lpns(self, lpns: Sequence[int]) -> Generator[Event, None, list[bytes]]:
        """Timed read of logical pages into device DRAM (one I/O unit).

        Channels work in parallel; the unit's pages then DMA across the
        shared DRAM bus in one serialized transfer. Returns the page bytes
        in ``lpns`` order.
        """
        obs = self.sim.obs
        by_channel: dict[int, int] = defaultdict(int)
        channel_of = self.geometry.channel_of
        if obs is None:
            ppns = self.ftl.lookup_many(lpns)
            for ppn in ppns:
                by_channel[channel_of(ppn)] += 1
        else:
            with obs.span("ftl.lookup", track="ftl", pages=len(lpns)):
                ppns = self.ftl.lookup_many(lpns)
                for ppn in ppns:
                    by_channel[channel_of(ppn)] += 1
            obs.metrics.counter("ftl.lookups").inc(len(lpns))
            for channel, count in by_channel.items():
                obs.metrics.counter("nand.read.pages",
                                    channel=channel).inc(count)

        occupancy = self.timing.channel_occupancy_per_read(self.geometry)
        channel_jobs = [
            self.sim.process(
                seize(self.channels[channel], count * occupancy,
                      None if obs is None else obs.span(
                          "nand.read", track=self.channels[channel].name,
                          pages=count)),
                name=f"chan{channel}-read")
            for channel, count in by_channel.items()
        ]
        yield self.sim.all_of(channel_jobs)
        yield from self._ecc_retry_rounds(ppns, occupancy)

        total = len(lpns) * self.geometry.page_nbytes
        if obs is None:
            yield from self.dram_bus.transfer(total)
        else:
            obs.metrics.counter("dram.bus.bytes", direction="read").inc(total)
            yield from self.dram_bus.transfer(
                total, obs.span("dram.dma", track=self.dram_bus.name,
                                bytes=total))

        pages = [self.nand.read(ppn) for ppn in ppns]
        if self.verify_ecc:
            verify_pages(pages)
            self.ecc_pages_checked += len(pages)
        return pages

    def write_lpns(self, lpns: Sequence[int],
                   pages: Sequence[bytes]) -> Generator[Event, None, None]:
        """Timed write of logical pages (DRAM -> channels -> NAND)."""
        obs = self.sim.obs
        total = len(lpns) * self.geometry.page_nbytes
        if obs is None:
            yield from self.dram_bus.transfer(total)
        else:
            obs.metrics.counter("dram.bus.bytes", direction="write").inc(total)
            yield from self.dram_bus.transfer(
                total, obs.span("dram.dma", track=self.dram_bus.name,
                                bytes=total))

        # Program out-of-place first so we know which channels are hit.
        by_channel: dict[int, int] = defaultdict(int)
        for lpn, data in zip(lpns, pages):
            ppn = self.ftl.write(lpn, data)
            by_channel[self.geometry.channel_of(ppn)] += 1

        occupancy = self.timing.channel_occupancy_per_program(self.geometry)
        channel_jobs = [
            self.sim.process(
                seize(self.channels[channel], count * occupancy,
                      None if obs is None else obs.span(
                          "nand.program", track=self.channels[channel].name,
                          pages=count)),
                name=f"chan{channel}-write")
            for channel, count in by_channel.items()
        ]
        yield self.sim.all_of(channel_jobs)
        if obs is not None:
            for channel, count in by_channel.items():
                obs.metrics.counter("nand.program.pages",
                                    channel=channel).inc(count)

    def _ecc_retry_rounds(self, ppns: Sequence[int],
                          occupancy: float) -> Generator[Event, None, None]:
        """Injected media errors: re-sense flagged pages with ECC retries.

        Each flagged page re-occupies its channel for the decided number of
        read-retry rounds (shifted-threshold re-senses); a page needing more
        rounds than the budget fails the whole unit with
        :class:`~repro.errors.UncorrectableMediaError`.
        """
        faults = getattr(self.sim, "faults", None)
        if faults is None:
            return
        for ppn in ppns:
            decision = check_fault(faults, SITE_NAND_READ,
                                   time=self.sim.now, ppn=ppn)
            if decision is None:
                continue
            rounds = int(decision.payload.get("retries", 1))
            self.ecc_retries += rounds
            obs = self.sim.obs
            if obs is not None:
                obs.metrics.counter("nand.ecc.retries").inc(rounds)
            if self.sim.tracer is not None:
                self.sim.tracer.mark(self.sim.now, "ecc-retry",
                                     f"ppn={ppn} rounds={rounds}")
            if rounds > self.ecc_retry_limit:
                self.ecc_uncorrectable += 1
                raise UncorrectableMediaError(
                    f"page {ppn} unreadable after "
                    f"{self.ecc_retry_limit} ECC retries")
            channel = self.geometry.channel_of(ppn)
            yield from seize(
                self.channels[channel], rounds * occupancy,
                None if obs is None else obs.span(
                    "nand.ecc-retry", track=self.channels[channel].name,
                    ppn=ppn, rounds=rounds))

    # -- instantaneous helpers ------------------------------------------------

    def read_lpns_untimed(self, lpns: Sequence[int]) -> list[bytes]:
        """Read page bytes without charging simulated time (bulk loading)."""
        return [self.ftl.read(lpn) for lpn in lpns]

    def internal_read_rate(self) -> float:
        """Sustained internal sequential read bandwidth in bytes/s.

        The minimum of the aggregate channel rate and the shared DRAM bus —
        for the default device the DRAM bus is the binding constraint, which
        is exactly the paper's Table-2 explanation.
        """
        occupancy = self.timing.channel_occupancy_per_read(self.geometry)
        per_channel = self.geometry.page_nbytes / occupancy
        aggregate = per_channel * self.geometry.channels
        return min(aggregate, self.dram_bus.rate)
