"""NAND organization and timing parameters.

Defaults describe a mid-2012 enterprise SATA/SAS SSD of the kind the paper's
prototype is built on: 8 channels, 4 dies per channel, 8 KiB pages (matching
the DBMS page size so one logical page maps to one flash page), 256 pages
per block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FlashError
from repro.storage.page import PAGE_SIZE
from repro.units import MB, US, MS


@dataclass(frozen=True)
class NandGeometry:
    """Physical organization of the flash array."""

    channels: int = 8
    chips_per_channel: int = 4
    blocks_per_chip: int = 256
    pages_per_block: int = 256
    page_nbytes: int = PAGE_SIZE

    def __post_init__(self):
        for field in ("channels", "chips_per_channel", "blocks_per_chip",
                      "pages_per_block", "page_nbytes"):
            if getattr(self, field) < 1:
                raise FlashError(f"{field} must be positive")
        # Derived sizes are consulted on every address check in the FTL/NAND
        # hot path; compute them once (frozen dataclass, so via __setattr__).
        object.__setattr__(self, "_dies",
                           self.channels * self.chips_per_channel)
        object.__setattr__(self, "_pages_per_chip",
                           self.blocks_per_chip * self.pages_per_block)
        object.__setattr__(self, "_total_pages",
                           self._dies * self._pages_per_chip)

    @property
    def dies(self) -> int:
        """Total dies (chips) across all channels."""
        return self._dies

    @property
    def pages_per_chip(self) -> int:
        """Flash pages on one die."""
        return self._pages_per_chip

    @property
    def total_pages(self) -> int:
        """Flash pages in the whole array."""
        return self._total_pages

    @property
    def capacity_nbytes(self) -> int:
        """Raw capacity in bytes."""
        return self.total_pages * self.page_nbytes

    # -- physical address arithmetic ---------------------------------------

    def ppn(self, channel: int, chip: int, block: int, page: int) -> int:
        """Flatten a (channel, chip, block, page) address to a PPN."""
        self._check(channel, chip, block, page)
        return (((channel * self.chips_per_channel + chip)
                 * self.blocks_per_chip + block)
                * self.pages_per_block + page)

    def unflatten(self, ppn: int) -> tuple[int, int, int, int]:
        """Inverse of :meth:`ppn`."""
        if not 0 <= ppn < self.total_pages:
            raise FlashError(f"PPN {ppn} out of range")
        page = ppn % self.pages_per_block
        rest = ppn // self.pages_per_block
        block = rest % self.blocks_per_chip
        rest //= self.blocks_per_chip
        chip = rest % self.chips_per_channel
        channel = rest // self.chips_per_channel
        return channel, chip, block, page

    def channel_of(self, ppn: int) -> int:
        """Channel a PPN lives on."""
        if not 0 <= ppn < self._total_pages:
            raise FlashError(f"PPN {ppn} out of range")
        # The channel is the top field of the flattened address.
        return ppn // (self.chips_per_channel * self._pages_per_chip)

    def _check(self, channel: int, chip: int, block: int, page: int) -> None:
        if not (0 <= channel < self.channels
                and 0 <= chip < self.chips_per_channel
                and 0 <= block < self.blocks_per_chip
                and 0 <= page < self.pages_per_block):
            raise FlashError(
                f"bad flash address ({channel}, {chip}, {block}, {page})")


@dataclass(frozen=True)
class NandTiming:
    """NAND operation timings and channel transfer rate.

    ``read_latency`` is the array-sense time (tR). Because reads across the
    dies of one channel interleave (cache reads / multi-plane), the channel's
    effective per-page occupancy is
    ``max(page transfer time, read_latency / chips_per_channel)``.
    """

    read_latency: float = 75 * US
    program_latency: float = 1.3 * MS
    erase_latency: float = 3.0 * MS
    channel_rate: float = 400 * MB  # ONFI-2.x bus, bytes/s

    def page_transfer_time(self, page_nbytes: int) -> float:
        """Seconds to move one page over the channel bus."""
        return page_nbytes / self.channel_rate

    def channel_occupancy_per_read(self, geometry: NandGeometry) -> float:
        """Effective channel busy time per sequential page read."""
        transfer = self.page_transfer_time(geometry.page_nbytes)
        sense = self.read_latency / geometry.chips_per_channel
        return max(transfer, sense)

    def channel_occupancy_per_program(self, geometry: NandGeometry) -> float:
        """Effective channel busy time per sequential page program."""
        transfer = self.page_transfer_time(geometry.page_nbytes)
        program = self.program_latency / geometry.chips_per_channel
        return max(transfer, program)
