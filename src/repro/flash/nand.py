"""The NAND flash array: real bytes with NAND semantics.

The array enforces what firmware must live with:

* reads and programs happen at page granularity,
* a page can only be programmed once after an erase (no in-place update),
* erases happen at block granularity.

State is tracked per page; data is stored sparsely (only programmed pages
hold bytes), so simulating a multi-GiB device costs memory proportional to
the data actually written.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import FlashError, ProgramFailError
from repro.faults import SITE_NAND_PROGRAM, check_fault
from repro.flash.geometry import NandGeometry


class PageState(enum.Enum):
    """Lifecycle of one flash page."""

    ERASED = "erased"
    PROGRAMMED = "programmed"
    INVALID = "invalid"  # superseded data awaiting block erase


class NandArray:
    """A flash array storing real page bytes under NAND rules."""

    def __init__(self, geometry: NandGeometry):
        self.geometry = geometry
        self._data: dict[int, bytes] = {}
        self._state: dict[int, PageState] = {}
        # Out-of-band metadata per programmed page: the owning LPN and a
        # monotonic write sequence — what real firmware stashes in the spare
        # area so the mapping survives power loss.
        self._oob: dict[int, tuple[int, int]] = {}
        self.reads = 0
        self.programs = 0
        self.erases = 0
        self.program_failures = 0
        #: Optional :class:`repro.faults.FaultPlan` (wired by the device).
        self.faults = None

    def state(self, ppn: int) -> PageState:
        """Current state of a page (pages start erased)."""
        self._check_ppn(ppn)
        return self._state.get(ppn, PageState.ERASED)

    def read(self, ppn: int) -> bytes:
        """Read a programmed page's bytes."""
        # Fast path: a PROGRAMMED state entry implies the PPN is valid
        # (only program() creates one), so the range check can wait for
        # the error path.
        if self._state.get(ppn) is PageState.PROGRAMMED:
            self.reads += 1
            return self._data[ppn]
        self._check_ppn(ppn)
        raise FlashError(f"read of {self.state(ppn).value} page {ppn}")

    def program(self, ppn: int, data: bytes,
                oob: Optional[tuple[int, int]] = None) -> None:
        """Program an erased page with exactly one page of bytes.

        ``oob`` carries (LPN, write-sequence) metadata into the page's
        out-of-band area; the FTL uses it to rebuild its mapping after an
        unclean shutdown. An injected program failure leaves the page
        unusable (INVALID, reclaimed on the next block erase) and raises
        :class:`~repro.errors.ProgramFailError` for firmware to retry.
        """
        self._check_ppn(ppn)
        if len(data) != self.geometry.page_nbytes:
            raise FlashError(
                f"program of {len(data)} bytes; page is "
                f"{self.geometry.page_nbytes}")
        if self.state(ppn) is not PageState.ERASED:
            raise FlashError(
                f"program of {self.state(ppn).value} page {ppn} "
                "(erase-before-program violated)")
        if check_fault(self.faults, SITE_NAND_PROGRAM, ppn=ppn) is not None:
            self._state[ppn] = PageState.INVALID
            self.program_failures += 1
            raise ProgramFailError(f"program failure at page {ppn}")
        self._data[ppn] = bytes(data)
        self._state[ppn] = PageState.PROGRAMMED
        if oob is not None:
            self._oob[ppn] = oob
        self.programs += 1

    def oob(self, ppn: int) -> Optional[tuple[int, int]]:
        """The (LPN, sequence) metadata programmed alongside a page."""
        self._check_ppn(ppn)
        return self._oob.get(ppn)

    def programmed_ppns(self) -> list[int]:
        """Every page currently holding live data, in PPN order."""
        return sorted(ppn for ppn, state in self._state.items()
                      if state is PageState.PROGRAMMED)

    def invalidate(self, ppn: int) -> None:
        """Mark a programmed page's data as superseded (FTL bookkeeping)."""
        self._check_ppn(ppn)
        if self.state(ppn) is not PageState.PROGRAMMED:
            raise FlashError(f"invalidate of {self.state(ppn).value} page {ppn}")
        self._state[ppn] = PageState.INVALID

    def erase_block(self, channel: int, chip: int, block: int) -> None:
        """Erase a whole block, releasing all its pages."""
        geometry = self.geometry
        first = geometry.ppn(channel, chip, block, 0)
        for ppn in range(first, first + geometry.pages_per_block):
            self._state.pop(ppn, None)
            self._data.pop(ppn, None)
            self._oob.pop(ppn, None)
        self.erases += 1

    def block_page_states(self, channel: int, chip: int,
                          block: int) -> list[PageState]:
        """States of every page in a block, in page order."""
        first = self.geometry.ppn(channel, chip, block, 0)
        return [self.state(ppn)
                for ppn in range(first, first + self.geometry.pages_per_block)]

    def _check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.geometry.total_pages:
            raise FlashError(f"PPN {ppn} out of range")
