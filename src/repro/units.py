"""Size, rate, and time unit helpers used throughout the simulator.

All byte quantities in the library are plain ``int`` bytes, all rates are
bytes per (virtual) second, and all times are (virtual) seconds as ``float``.
These constants keep call sites readable: ``4 * MIB`` instead of ``4194304``.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30

US = 1e-6
MS = 1e-3

#: Decimal megabytes per second -> bytes per second (storage vendors and the
#: paper quote decimal MB/s; e.g. the paper's 550 MB/s and 1,560 MB/s).
MB_PER_S = MB


def mb_per_s(rate_bytes_per_s: float) -> float:
    """Convert a bytes-per-second rate to decimal MB/s for reporting."""
    return rate_bytes_per_s / MB


def fmt_bytes(n: int) -> str:
    """Render a byte count with a human-friendly binary suffix."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_ratio(value: float) -> str:
    """Render a dimensionless ratio (speedup, write amplification)."""
    return f"{value:.2f}x"


def fmt_seconds(t: float) -> str:
    """Render a duration in the most natural unit (us/ms/s)."""
    if t < 1e-3:
        return f"{t / US:.1f} us"
    if t < 1.0:
        return f"{t / MS:.2f} ms"
    return f"{t:.2f} s"
