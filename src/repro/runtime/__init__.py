"""Parallel fleet runtime: multi-core scatter/gather over device lanes.

The paper's argument is that query processing belongs where the aggregate
bandwidth is — across many Smart SSDs at once. This package gives the
*host side* of that story real parallelism: the scheduler's per-device
work units are partitioned into independent lanes, each lane runs in an
isolated clone of the simulated world on a worker (thread or forked
process), and the results are deterministically replayed onto the parent
world so every backend is bit-identical to the serial engine — same rows,
counters, virtual times, energy floats, and goldens.

Entry points: set ``SchedulerConfig.backend`` (or ``ServeConfig.backend``)
to ``"serial"`` / ``"thread"`` / ``"process"``. See docs/PERFORMANCE.md
for when lanes can and cannot split and the exact determinism contract.
"""

from repro.runtime.backends import (
    BACKEND_NAMES,
    LaneExecutionError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.runtime.lanes import LanePlan, plan_lanes
from repro.runtime.merge import merge_lane_results
from repro.runtime.worlds import (
    LaneBatch,
    LaneResult,
    LaneSubmissionSpec,
    LaneWorld,
    clone_lane_worlds,
    world_fingerprint,
)

__all__ = [
    "BACKEND_NAMES",
    "LaneBatch",
    "LaneExecutionError",
    "LanePlan",
    "LaneResult",
    "LaneSubmissionSpec",
    "LaneWorld",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "clone_lane_worlds",
    "merge_lane_results",
    "plan_lanes",
    "resolve_backend",
    "world_fingerprint",
]
