"""Validate a parallel batch and replay it onto the parent world.

The contract with :mod:`repro.sched`: after ``merge_lane_results`` returns
ok, the parent world is in *exactly* the state the serial engine would
have left — same virtual clock, same busy-tracker floats (bit for bit,
because the serial float operation sequence is replayed, not summed),
same byte counters, same health records — so the unchanged accounting
tail of ``QueryScheduler._run`` computes identical windows, utilization,
and energy. Until that point the parent is never mutated, so a failed
validation simply discards the lane results and reruns the batch on the
untouched parent with the serial engine.

Validation rejects (reason in parentheses) batches where:

* a lane touched the host buffer pool or left dirty pages — host-path
  work escaped onto shared state (``buffer_pool``);
* any member fell back to the host or was rescued solo (``host_fallback``,
  ``rescue``);
* two lanes recorded changes on the same cloned resource — the partition
  was not actually independent (``shared_resource``);
* the lanes' summed host-CPU demand ever exceeds the real core count
  (``host_cpu_contention``): the serial run would have queued, and
  queuing order is exactly the cross-lane coupling lanes cannot see.
  Ties are counted acquires-before-releases, so the peak is pessimistic;
  a peak *equal* to capacity is fine — the serial resource grants the
  last core with ``in_use < capacity`` still true, never queuing.
"""

from __future__ import annotations

from repro.faults import DeviceHealth
from repro.sim.trace import LevelChange, TraceMark

#: Stat keys summed across lanes into the parent scheduler's stats dict.
_SUMMED_STATS = ("shared_groups", "shared_members", "late_attaches",
                 "solo_rescues", "saved_page_reads", "shared_pages_read",
                 "pages_skipped")


def _merged_cpu_levels(results, host_cpu_index: int, initial: float):
    """Cross-lane host-CPU demand as one absolute ``(t, level)`` sequence."""
    deltas = []
    for result in results:
        previous = initial
        for when, level in result.tracker_logs.get(host_cpu_index, ()):
            deltas.append((when, 0 if level > previous else 1,
                           result.lane, level - previous))
            previous = level
    deltas.sort(key=lambda item: item[:3])
    levels = []
    running = initial
    peak = initial
    for when, _, _, delta in deltas:
        running += delta
        peak = max(peak, running)
        levels.append((when, running))
    return levels, peak


def merge_lane_results(scheduler, results, tickets, start: float
                       ) -> tuple[bool, str]:
    """Validate lane results; on success replay them onto the parent.

    ``tickets`` maps submission index to the parent's Submission object.
    Returns ``(ok, reason)`` — when not ok the parent is untouched.
    """
    db = scheduler.db
    sim = db.sim

    # -- validation (no parent mutation past this block) -------------------
    for result in results:
        if result.bp_delta != (0, 0, 0, 0) or result.bp_dirty:
            return False, "buffer_pool"
        if result.rescued:
            return False, "rescue"
        if result.pushdown_fallbacks:
            return False, "host_fallback"

    host_cpu_index = sim._traceables.index(db.machine.cpu)
    owners: dict[int, int] = {}
    for result in results:
        for index in result.tracker_logs:
            if index == host_cpu_index:
                continue
            if owners.setdefault(index, result.lane) != result.lane:
                return False, "shared_resource"

    cpu_tracker = db.machine.cpu.busy
    cpu_levels, peak = _merged_cpu_levels(results, host_cpu_index,
                                          cpu_tracker.level)
    if peak > db.machine.cpu.capacity:
        return False, "host_cpu_contention"

    # -- replay ------------------------------------------------------------
    for when, level in cpu_levels:
        cpu_tracker.set_level(when, level)
    for result in results:
        for index, log in result.tracker_logs.items():
            if index == host_cpu_index:
                continue
            tracker = sim._traceables[index].busy
            for when, level in log:
                tracker.set_level(when, level)

    for result in results:
        for name, (interface_delta, dram_delta) in result.byte_deltas.items():
            device = db.device(name)
            device.interface._bytes_moved += interface_delta
            device.controller.dram_bus._bytes_moved += dram_delta
        for name, triple in result.health.items():
            db.health._devices[name] = DeviceHealth(*triple)

    stats = scheduler.stats
    for result in results:
        lane_stats = result.stats
        for key in _SUMMED_STATS:
            stats[key] += lane_stats.get(key, 0)
        stats["fan_in"].extend(lane_stats.get("fan_in", ()))
        stats["admission_waits"].extend(
            lane_stats.get("admission_waits", ()))
        peaks = stats["max_queue_depth"]
        for device, depth in lane_stats.get("max_queue_depth", {}).items():
            peaks[device] = max(peaks.get(device, 0), depth)

    tracer = sim.tracer
    if tracer is not None:
        merged_events: dict[str, list] = {}
        for result in results:
            for name, events in result.trace_events.items():
                if name == db.machine.cpu.name:
                    continue    # lane-local levels; replaced by the merge
                merged_events.setdefault(name, []).extend(events)
        for name, events in merged_events.items():
            events.sort(key=lambda event: event[0])
            tracer._events[name].extend(
                LevelChange(time=when, level=level)
                for when, level in events)
        tracer._events[db.machine.cpu.name].extend(
            LevelChange(time=when, level=level)
            for when, level in cpu_levels)
        marks = [mark for result in results for mark in result.trace_marks]
        marks.sort(key=lambda mark: mark[0])
        tracer._marks.extend(TraceMark(time=when, label=label, detail=detail)
                             for when, label, detail in marks)

    obs = sim.obs
    if obs is not None:
        spans = [span for result in results for span in result.spans]
        spans.sort(key=lambda span: (span.start, span.end, span.track,
                                     span.name, span.depth))
        obs.spans.extend(spans)
        _merge_metrics(obs.metrics, results)

    for result in results:
        for fields in result.submissions:
            ticket = tickets[fields["index"]]
            ticket.outcome = fields["outcome"]
            ticket.done_at = fields["done_at"]
            ticket.shared = fields["shared"]
            ticket.late_attach = fields["late_attach"]
            ticket.rescued = fields["rescued"]
            ticket.admission_wait = fields["admission_wait"]

    sim.advance_to(max((result.end for result in results), default=start))
    return True, ""


def _merge_metrics(registry, results) -> None:
    """Fold lane metric deltas into the parent registry, in lane order.

    Counters and histogram counts are exact (int adds); float histogram
    sums may differ from serial in the last ulp — the documented
    aggregate-exact contract for instrumented runs. Gauges are last-write
    in lane order (deterministic, multiset-equal to serial's writes).
    """
    from repro.obs.metrics import Counter, Gauge, Histogram

    series_map = registry._series
    for result in results:
        for key, kind, payload in result.metric_series:
            series = series_map.get(key)
            if kind == "counter":
                if series is None:
                    series = series_map[key] = Counter()
                series.value += payload
            elif kind == "gauge":
                if series is None:
                    series = series_map[key] = Gauge()
                series.value = payload
            else:
                if series is None:
                    series = series_map[key] = Histogram()
                count, total, vmin, vmax = payload
                series.count += count
                series.total += total
                series.vmin = min(series.vmin, vmin)
                series.vmax = max(series.vmax, vmax)
