"""Lane worlds: isolated clones of one Database, one per execution lane.

The parallel runtime (:mod:`repro.runtime`) never lets two OS threads (or
processes) touch the same :class:`~repro.sim.Simulator`. Instead it keeps
a *fleet* of *lane worlds* — full pickle-round-trip clones of the parent
:class:`~repro.host.db.Database`, each pruned down to the devices of one
lane — and runs every batch's per-lane work units inside those clones.
The parent world is only read while lanes run; all mutation happens at
merge time (:mod:`repro.runtime.merge`), after validation, by *replaying*
the lanes' recorded busy-level changes onto the parent's own trackers.

Why replay instead of shipping busy-time deltas: ``BusyTracker`` keeps a
float integral, and float accumulation is order- and base-dependent
(``(a + x) - a != x``). Replaying the exact ``(time, level)`` sequence the
serial run would have produced reproduces serial's exact float operation
sequence on the parent's trackers, so energy, utilization, and host-CPU
accounting stay *bit-identical* to the serial backend — not just close.

The mapping from lane resources back to parent resources is positional:
``Simulator._traceables`` preserves construction order across the pickle
round trip, and resource *names* collide across devices (every SSD has a
``device-dram-bus``, every controller its ``flash-channel-N``), so names
cannot address them. Resources a lane creates after cloning (per-batch
admission gates, per-session windows) have indices past the clone point
and deliberately have no parent counterpart to replay onto.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.engine.plans import Placement, Query
from repro.flash.hdd import Hdd
from repro.sim.stats import BusyTracker
from repro.sim.trace import Tracer

#: Effectively-infinite host-CPU capacity installed in every lane world.
#:
#: A lane must never *queue* on the host CPU: queuing would interleave its
#: grants with demand the lane cannot see (the other lanes), producing
#: timings that depend on the partition. With unbounded lane capacity the
#: recorded level log is the lane's raw *demand* curve; the merge step
#: sums the lanes' demand curves and accepts the batch only if the summed
#: peak never exceeds the real capacity — i.e. only when the serial run
#: would not have queued either, which is exactly when timings agree.
LANE_CPU_CAPACITY = 1 << 20


class _RecordingTracker(BusyTracker):
    """A ``BusyTracker`` that also logs every ``(time, level)`` change.

    Installed over each cloned resource's tracker (seeded with the parent
    state, so in-lane ``busy_time`` reads stay correct). ``adjust`` funnels
    through ``set_level``, so one override captures every change.
    """

    def __init__(self, base: BusyTracker):
        self._level = base._level
        self._last_change = base._last_change
        self._integral = base._integral
        self.log: list[tuple[float, float]] = []

    def set_level(self, now: float, level: float) -> None:
        self.log.append((now, level))
        BusyTracker.set_level(self, now, level)


def world_fingerprint(db) -> tuple:
    """Cheap identity of everything a lane world clones.

    A cached fleet is only reused while this is unchanged. The explicit
    ``_world_version`` counter covers data mutation (DML, flush, fault
    plans, device attach); the catalog part covers tables created behind
    the Database facade (``catalog.create_sharded_table`` is called
    directly by the serving layer's ablations).
    """
    catalog = db.catalog
    return (
        getattr(db, "_world_version", 0),
        tuple(sorted(catalog._tables)),
        tuple(sorted(catalog._versions.items())),
        tuple(sorted(db._devices)),
    )


@dataclass(frozen=True)
class LaneSubmissionSpec:
    """The slice of a scheduler Submission a lane needs to run it."""

    index: int                  # parent submission index (keeps track names)
    query: Query
    placement: Placement
    resolved: Placement
    arrival: float


@dataclass(frozen=True)
class LaneBatch:
    """One gather()'s worth of work for one lane."""

    start: float                # parent virtual clock at batch start
    units: tuple[tuple[str, tuple[LaneSubmissionSpec, ...]], ...]
    obs: bool                   # parent has observability attached
    trace: bool                 # parent has a tracer attached


@dataclass
class LaneResult:
    """Everything a lane ships back from one batch.

    Numbers that feed parent state are either exact ints (byte counters,
    buffer-pool counts) or raw ``(time, level)`` logs that the merge step
    replays; nothing pre-summed in floats crosses the boundary.
    """

    lane: int
    end: float                                    # lane clock after the batch
    submissions: list[dict]                       # filled parent tickets
    stats: dict
    tracker_logs: dict[int, list[tuple[float, float]]]   # traceable idx -> log
    byte_deltas: dict[str, tuple[int, int]]       # device -> (interface, dram)
    bp_delta: tuple[int, int, int, int]           # hits, misses, evictions, frames
    bp_dirty: bool
    health: dict[str, tuple[int, int, int]]       # device -> health triple
    rescued: bool                                 # any member re-ran solo
    pushdown_fallbacks: int
    spans: list = field(default_factory=list)
    metric_series: list = field(default_factory=list)   # (key, kind, payload)
    trace_events: dict = field(default_factory=dict)    # name -> [(t, level)]
    trace_marks: list = field(default_factory=list)     # (t, label, detail)


class LaneWorld:
    """One lane's private clone of the parent world, reusable across batches."""

    def __init__(self, db, lane: int, devices: tuple[str, ...],
                 clone_count: int, host_cpu_index: int, scheduler_config):
        from repro.sched.scheduler import QueryScheduler

        self.db = db
        self.lane = lane
        self.devices = devices
        #: Parent traceable count at clone time: only indices below this
        #: have a parent counterpart to replay onto.
        self.clone_count = clone_count
        self.host_cpu_index = host_cpu_index
        self._prune()
        self.db.machine.cpu.capacity = LANE_CPU_CAPACITY
        self.recorders: list[_RecordingTracker] = []
        for resource in self.db.sim._traceables[:clone_count]:
            recorder = _RecordingTracker(resource.busy)
            resource.busy = recorder
            self.recorders.append(recorder)
        self.scheduler = QueryScheduler(self.db, scheduler_config)

    def _prune(self) -> None:
        """Drop everything outside this lane's devices, freeing the memory.

        Catalog tables pin their device objects, so foreign tables must go
        too; sharded logicals whose shards span foreign devices likewise.
        Lane queries only ever name tables on lane devices (the planner
        guarantees it), so nothing reachable is dropped.
        """
        db = self.db
        keep = set(self.devices)
        db._devices = {name: device for name, device in db._devices.items()
                       if name in keep}
        catalog = db.catalog
        foreign = [name for name, table in catalog._tables.items()
                   if table.device_name not in keep]
        for name in foreign:
            del catalog._tables[name]
            catalog._shard_parent.pop(name, None)
        catalog._sharded = {
            name: sharded for name, sharded in catalog._sharded.items()
            if set(sharded.device_names) <= keep}

    # -- one batch ---------------------------------------------------------

    def run_batch(self, batch: LaneBatch) -> LaneResult:
        from repro.sched.scheduler import QueryScheduler, Submission

        db = self.db
        sim = db.sim
        sim.advance_to(batch.start)
        for recorder in self.recorders:
            recorder.log.clear()

        # Per-batch observability/tracer so spans, metric values, and
        # trace events come out as batch *deltas*, ready to merge.
        sim.tracer = Tracer() if (batch.trace or batch.obs) else None
        obs = None
        if batch.obs:
            from repro.obs import Observability
            obs = Observability().attach(sim)

        bp = db.buffer_pool
        bp_before = (bp.hits, bp.misses, bp.evictions, len(bp))
        bytes_before = {name: (db._interface_bytes(device),
                               db._dram_bytes(device))
                        for name, device in db._devices.items()}

        submissions: list[Submission] = []
        units: list[tuple[str, list[Submission]]] = []
        for kind, members in batch.units:
            group = [Submission(index=m.index, query=m.query,
                                placement=m.placement, arrival=m.arrival,
                                resolved=m.resolved)
                     for m in members]
            units.append((kind, group))
            submissions.extend(group)

        sched = self.scheduler
        sched.stats = QueryScheduler._fresh_stats(len(submissions))
        try:
            sched._execute_units(units)
        finally:
            sim.obs = None
            sim.tracer = None

        result = LaneResult(
            lane=self.lane,
            end=sim.now,
            submissions=[{
                "index": s.index,
                "resolved": s.resolved,
                "outcome": s.outcome,
                "done_at": s.done_at,
                "shared": s.shared,
                "late_attach": s.late_attach,
                "rescued": s.rescued,
                "admission_wait": s.admission_wait,
            } for s in submissions],
            stats=sched.stats,
            tracker_logs={index: list(recorder.log)
                          for index, recorder in enumerate(self.recorders)
                          if recorder.log},
            byte_deltas={
                name: (db._interface_bytes(device) - bytes_before[name][0],
                       db._dram_bytes(device) - bytes_before[name][1])
                for name, device in db._devices.items()
                if not isinstance(device, Hdd)},
            bp_delta=(bp.hits - bp_before[0], bp.misses - bp_before[1],
                      bp.evictions - bp_before[2], len(bp) - bp_before[3]),
            bp_dirty=any(frame.dirty for frame in bp._frames.values()),
            health={name: (record.consecutive_failures,
                           record.total_failures, record.total_successes)
                    for name, record in db.health._devices.items()
                    if name in db._devices},
            rescued=any(s.rescued for s in submissions),
            pushdown_fallbacks=sum(
                s.outcome.counters.pushdown_fallbacks
                for s in submissions if s.outcome is not None),
        )
        if obs is not None:
            result.spans = list(obs.spans)
            result.metric_series = _dump_metrics(obs.metrics)
        tracer = obs.tracer if obs is not None else None
        if batch.trace and tracer is not None:
            result.trace_events = {
                name: [(change.time, change.level) for change in changes]
                for name, changes in tracer._events.items()}
            result.trace_marks = [(mark.time, mark.label, mark.detail)
                                  for mark in tracer._marks]
        return result


def _dump_metrics(registry) -> list[tuple[str, str, Any]]:
    """Flatten a lane registry into picklable (key, kind, payload) rows."""
    from repro.obs.metrics import Counter, Gauge, Histogram

    rows: list[tuple[str, str, Any]] = []
    for key, series in registry._series.items():
        if isinstance(series, Counter):
            rows.append((key, "counter", series.value))
        elif isinstance(series, Gauge):
            rows.append((key, "gauge", series.value))
        elif isinstance(series, Histogram):
            rows.append((key, "histogram", (series.count, series.total,
                                            series.vmin, series.vmax)))
    return rows


def clone_lane_worlds(db, groups: tuple[tuple[str, ...], ...],
                      scheduler_config) -> list[LaneWorld]:
    """Pickle the parent world once and materialize one clone per lane.

    The non-picklable / parent-only attachments (observability, tracer,
    fault plan) are detached for the dump and restored immediately; lanes
    get fresh per-batch instances instead (see :meth:`LaneWorld.run_batch`).
    """
    sim = db.sim
    saved = (sim.obs, sim.tracer, sim.faults)
    sim.obs = sim.tracer = sim.faults = None
    try:
        blob = pickle.dumps(db, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        sim.obs, sim.tracer, sim.faults = saved
    clone_count = len(sim._traceables)
    host_cpu_index = sim._traceables.index(db.machine.cpu)
    worlds = []
    for lane, devices in enumerate(groups):
        clone = pickle.loads(blob)
        worlds.append(LaneWorld(clone, lane, devices, clone_count,
                                host_cpu_index, scheduler_config))
    return worlds
