"""Lane planning: which scheduler units may run in which isolated world.

A *lane* is a set of devices whose work this batch never couples to the
rest of the world: every unit whose table (and join build side) lives on
lane devices can run in a private clone of the world and merge back
deterministically. Shard legs to distinct devices parallelize; shared-scan
cliques and same-device queues stay within one lane by construction
(their units all name the same device, so union-find keeps them together).

``plan_lanes`` is deliberately conservative: anything that couples lanes
through host-side state declines the whole batch to the serial engine,
which is always available and always exact. The decline reasons are:

``single_lane``
    fewer than two device groups — nothing to parallelize.
``host_placement``
    a unit resolved to host execution: host scans route pages through the
    shared buffer pool and dominate the shared host CPU.
``fault_plan``
    an active fault plan with rules: fault consultation is stateful
    (hit/fired counters, RNG draws) and failure recovery couples devices
    through host fallback and the health registry.
``dirty_pages``
    the buffer pool holds newer-than-device pages, so device scans are
    not authoritative and the serial path's pushdown veto must decide.
``write_dml``
    the batch contains scheduler write units: DML mutates the buffer
    pool, catalog versions, and device FTL state — host-side couplings a
    lane clone cannot merge back.
``unpicklable``
    (process backend only) the batch payload cannot cross a pipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.plans import Placement
from repro.smart.array import lane_partition


@dataclass(frozen=True)
class LanePlan:
    """The accepted partition of one batch's units into lanes."""

    #: Device groups, one per lane, in canonical ``lane_partition`` order.
    groups: tuple[tuple[str, ...], ...]
    #: ``unit_lanes[i]`` is the lane index of the i-th planned unit.
    unit_lanes: tuple[int, ...]


def _unit_devices(db, members) -> Optional[set]:
    devices = set()
    for submission in members:
        if submission.resolved is Placement.HOST:
            return None
        devices.add(db.catalog.table(submission.query.table).device_name)
        if submission.query.join is not None:
            devices.add(
                db.catalog.table(submission.query.join.build_table)
                .device_name)
    return devices


def plan_lanes(scheduler, units) -> tuple[Optional[LanePlan], str]:
    """Partition planned units into device lanes, or decline with a reason."""
    db = scheduler.db
    faults = db.sim.faults
    if faults is not None and getattr(faults, "rules", None):
        return None, "fault_plan"
    if any(frame.dirty for frame in db.buffer_pool._frames.values()):
        return None, "dirty_pages"

    parent: dict[str, str] = {}

    def find(device: str) -> str:
        root = device
        while parent.setdefault(root, root) != root:
            root = parent[root]
        parent[device] = root
        return root

    per_unit: list[set] = []
    for kind, members in units:
        if kind == "write":
            return None, "write_dml"
        devices = _unit_devices(db, members)
        if devices is None:
            return None, "host_placement"
        per_unit.append(devices)
        first = find(next(iter(devices)))
        for device in devices:
            parent[find(device)] = first

    grouped: dict[str, list[str]] = {}
    for device in parent:
        grouped.setdefault(find(device), []).append(device)
    groups = tuple(sorted((lane_partition(members)
                           for members in grouped.values()),
                          key=lambda group: group[0]))
    if len(groups) < 2:
        return None, "single_lane"

    lane_of = {device: index
               for index, group in enumerate(groups)
               for device in group}
    unit_lanes = tuple(lane_of[next(iter(devices))] for devices in per_unit)
    return LanePlan(groups=groups, unit_lanes=unit_lanes), ""
