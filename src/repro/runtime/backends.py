"""Pluggable execution backends: serial, thread, and process fleets.

``QueryScheduler`` hands every planned batch to a backend. The serial
backend is the engine that has always existed — one simulator, one OS
thread. The parallel backends carve the batch into device lanes
(:mod:`repro.runtime.lanes`), run each lane in its own cloned world
(:mod:`repro.runtime.worlds`) on a worker, and replay the results onto
the parent (:mod:`repro.runtime.merge`). Any batch the planner or the
validator cannot prove independent silently runs on the serial engine
instead — parallelism is an optimization, never a semantic.

Worker setup is amortized: lane worlds (and, for the process backend, the
forked workers holding them) are built once per *fleet* and reused for
every batch until the parent world's fingerprint changes, a batch is
discarded, or the lane partition shifts. The process backend requires the
``fork`` start method so clones transfer by page-table copy, not pickle.

Per-scheduler accounting lands in ``scheduler.runtime_stats``:
``parallel_batches`` / ``serial_batches`` counts, ``fleet_builds``, and a
``fallbacks`` histogram of decline/discard reasons.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from dataclasses import replace
from typing import Optional

from repro.errors import PlanError
from repro.runtime.lanes import LanePlan, plan_lanes
from repro.runtime.merge import merge_lane_results
from repro.runtime.worlds import (
    LaneBatch,
    LaneSubmissionSpec,
    clone_lane_worlds,
    world_fingerprint,
)

#: The recognized backend names, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process")


class LaneExecutionError(Exception):
    """A lane worker died or reported an error; the batch reruns serially."""


class SerialBackend:
    """The always-available engine: run units on the parent simulator."""

    name = "serial"

    def execute_units(self, scheduler, units) -> None:
        scheduler._execute_units(units)

    def close(self) -> None:
        pass


class _FleetBackend:
    """Shared orchestration of the thread and process backends."""

    name = "fleet"
    _needs_pickle = False

    def __init__(self):
        self._fleet = None
        self._fingerprint = None
        self._groups: Optional[tuple] = None

    # -- the per-batch pipeline -------------------------------------------

    def execute_units(self, scheduler, units) -> None:
        plan, reason = plan_lanes(scheduler, units)
        if plan is None:
            return self._fallback(scheduler, units, reason)
        if not self._available():
            return self._fallback(scheduler, units, "backend_unavailable")
        sim = scheduler.db.sim
        start = sim.now
        batches = self._build_batches(plan, units, start,
                                      obs=sim.obs is not None,
                                      trace=sim.tracer is not None)
        if batches is None:
            return self._fallback(scheduler, units, "unpicklable")
        try:
            fleet = self._ensure_fleet(scheduler, plan)
        except Exception:
            self._invalidate()
            return self._fallback(scheduler, units, "clone_failed")
        try:
            results = fleet.run(batches)
        except LaneExecutionError:
            self._invalidate()
            return self._fallback(scheduler, units, "lane_error")
        tickets = {submission.index: submission
                   for _, members in units for submission in members}
        ok, why = merge_lane_results(scheduler, results, tickets, start)
        if not ok:
            # Lane results are discarded whole; the parent world was not
            # touched, so the serial rerun is exact. The fleet is rebuilt
            # next batch because the rerun will move parent state.
            self._invalidate()
            return self._fallback(scheduler, units, why)
        scheduler.runtime_stats["parallel_batches"] += 1

    def _fallback(self, scheduler, units, reason: str) -> None:
        stats = scheduler.runtime_stats
        stats["serial_batches"] += 1
        fallbacks = stats["fallbacks"]
        fallbacks[reason] = fallbacks.get(reason, 0) + 1
        scheduler._execute_units(units)

    def _build_batches(self, plan: LanePlan, units, start: float,
                       obs: bool, trace: bool) -> Optional[list[LaneBatch]]:
        per_lane: list[list] = [[] for _ in plan.groups]
        for (kind, members), lane in zip(units, plan.unit_lanes):
            specs = tuple(
                LaneSubmissionSpec(index=s.index, query=s.query,
                                   placement=s.placement,
                                   resolved=s.resolved, arrival=s.arrival)
                for s in members)
            per_lane[lane].append((kind, specs))
        batches = [LaneBatch(start=start, units=tuple(lane_units),
                             obs=obs, trace=trace)
                   for lane_units in per_lane]
        if self._needs_pickle:
            try:
                pickle.dumps(batches, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                return None
        return batches

    def _ensure_fleet(self, scheduler, plan: LanePlan):
        fingerprint = world_fingerprint(scheduler.db)
        if (self._fleet is not None and self._fingerprint == fingerprint
                and self._groups == plan.groups):
            return self._fleet
        self._invalidate()
        lane_config = replace(scheduler.config, backend="serial")
        worlds = clone_lane_worlds(scheduler.db, plan.groups, lane_config)
        self._fleet = self._make_fleet(worlds)
        self._fingerprint = fingerprint
        self._groups = plan.groups
        scheduler.runtime_stats["fleet_builds"] += 1
        return self._fleet

    def _invalidate(self) -> None:
        if self._fleet is not None:
            self._fleet.close()
        self._fleet = None
        self._fingerprint = None
        self._groups = None

    def close(self) -> None:
        self._invalidate()

    # -- backend hooks -----------------------------------------------------

    def _available(self) -> bool:
        return True

    def _make_fleet(self, worlds):
        raise NotImplementedError


class ThreadBackend(_FleetBackend):
    """Lane worlds on Python threads in this process.

    Pure-Python simulation is GIL-bound, so this backend buys little
    wall-clock on CPython — its value is exercising the exact fleet
    machinery (clone, record, validate, replay) without process plumbing,
    and it is the natural backend for GIL-free builds.
    """

    name = "thread"

    def _make_fleet(self, worlds):
        return _ThreadFleet(worlds)


class ProcessBackend(_FleetBackend):
    """Lane worlds in forked worker processes, one long-lived per lane.

    Workers are forked *after* the lane worlds exist, so the shard tables
    transfer by copy-on-write page mapping — once per fleet, not per
    query. Batches and results cross a pipe; they are small (queries and
    outcome rows), the world never crosses again.
    """

    name = "process"
    _needs_pickle = True

    def _available(self) -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _make_fleet(self, worlds):
        return _ProcessFleet(worlds)


class _ThreadFleet:
    def __init__(self, worlds):
        self.worlds = worlds

    def run(self, batches):
        results = [None] * len(batches)
        errors = []

        def work(lane: int) -> None:
            try:
                results[lane] = self.worlds[lane].run_batch(batches[lane])
            except BaseException as exc:  # surfaced as a batch-level retry
                errors.append((lane, exc))

        threads = [threading.Thread(target=work, args=(lane,),
                                    name=f"repro-lane-{lane}")
                   for lane in range(len(batches))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            lane, exc = errors[0]
            raise LaneExecutionError(f"lane {lane}: {exc!r}") from exc
        return results

    def close(self) -> None:
        self.worlds = []


def _process_worker(conn, world) -> None:
    """Worker loop: inherited lane world, batches in, results out."""
    import traceback
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] != "run":
            break
        try:
            result = world.run_batch(message[1])
        except BaseException:
            conn.send(("err", traceback.format_exc()))
        else:
            conn.send(("ok", result))
    conn.close()


class _ProcessFleet:
    def __init__(self, worlds):
        context = multiprocessing.get_context("fork")
        self.pipes = []
        self.workers = []
        for world in worlds:
            parent_end, child_end = context.Pipe()
            worker = context.Process(
                target=_process_worker, args=(child_end, world),
                name=f"repro-lane-{world.lane}", daemon=True)
            worker.start()
            child_end.close()
            self.pipes.append(parent_end)
            self.workers.append(worker)
        # The parent's copies served only to seed the forks.
        del worlds

    def run(self, batches):
        for pipe, batch in zip(self.pipes, batches):
            try:
                pipe.send(("run", batch))
            except (OSError, ValueError) as exc:
                raise LaneExecutionError(f"send failed: {exc!r}") from exc
        results = []
        for lane, pipe in enumerate(self.pipes):
            try:
                status, payload = pipe.recv()
            except (EOFError, OSError) as exc:
                raise LaneExecutionError(
                    f"lane {lane} worker died") from exc
            if status != "ok":
                raise LaneExecutionError(f"lane {lane}: {payload}")
            results.append(payload)
        return results

    def close(self) -> None:
        for pipe in self.pipes:
            try:
                pipe.send(("close",))
            except (OSError, ValueError):
                pass
            pipe.close()
        for worker in self.workers:
            worker.join(timeout=2.0)
            if worker.is_alive():
                worker.terminate()
        self.pipes = []
        self.workers = []


def resolve_backend(name: str):
    """Instantiate the named backend (each scheduler owns its own fleet)."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend()
    if name == "process":
        return ProcessBackend()
    raise PlanError(f"unknown runtime backend {name!r}; expected one of "
                    f"{list(BACKEND_NAMES)}")
