"""Ablations and extension experiments beyond the paper's headline results.

These probe the design choices DESIGN.md calls out:

* **A1 layout** — decompose the NSM/PAX gap inside the device into its two
  mechanisms (DRAM-bus bytes touched vs. CPU cycles burned).
* **A2 device hardware** — §5's "add more hardware" direction: sweep the
  embedded core count and the DRAM-bus rate toward Figure 1's ~10x.
* **A3 I/O unit size** — amortization of per-command firmware overhead
  (the paper measures with 32-page units).
* **E1 optimizer** — §4.3's cost-based pushdown decision vs. ground truth.
* **E2 multi-device array** — §4.3's "parallel DBMS" endpoint.
* **E3 concurrent queries** — §4.3's concurrent-session interference.
* **E7 HTAP write path** — GC policy face-off under overwrite skew, and
  concurrent DML streams against shared scans on the same device.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.bench import paper
from repro.bench.figures import ExperimentResult
from repro.bench.runners import (
    TPCH_RUN_SCALE,
    DeviceKind,
    make_tpch_db,
    make_synthetic_db,
    run_at_paper_scale,
)
from repro.model.costs import DEVICE_CPU
from repro.sim import Simulator
from repro.smart.array import SmartSsdArray
from repro.smart.device import SmartSsdSpec
from repro.storage import Layout
from repro.units import MB, fmt_ratio
from repro.workloads import (
    generate_lineitem,
    lineitem_schema,
    q6_query,
    synthetic_join_query,
)


def ablation_layout(run_scale: float = TPCH_RUN_SCALE) -> ExperimentResult:
    """A1: decompose the in-device NSM/PAX gap for Q6."""
    rows = []
    for layout in (Layout.NSM, Layout.PAX):
        db = make_tpch_db(DeviceKind.SMART, layout, run_scale)
        run = run_at_paper_scale(db, q6_query(), "smart", run_scale,
                                 paper.TPCH_SCALE_FACTOR,
                                 label=f"smart-{layout.value}",
                                 layout=layout)
        stages = run.paper_scale.stages
        rows.append([layout.value, run.elapsed_at_paper_scale,
                     stages.cpu, stages.dram_bus, stages.flash,
                     run.paper_scale.bottleneck])
    return ExperimentResult(
        experiment="Ablation A1: NSM vs PAX inside the device (Q6, SF-100)",
        headers=["layout", "elapsed s", "cpu stage s", "dram-bus stage s",
                 "flash stage s", "bottleneck"],
        rows=rows,
        notes="NSM pays twice: whole records cross the DRAM bus again for "
              "the CPU, and record parsing burns more cycles per tuple",
    )


def ablation_device_hardware(
        run_scale: float = TPCH_RUN_SCALE,
        core_counts: Sequence[int] = (1, 2, 3, 4, 6, 8),
        bus_rates_mb: Sequence[float] = (1560, 3120, 6240),
) -> ExperimentResult:
    """A2: sweep embedded cores and DRAM-bus rate (the §5 direction)."""
    base_db = make_tpch_db(DeviceKind.SSD, Layout.NSM, run_scale)
    baseline = run_at_paper_scale(base_db, q6_query(), "host", run_scale,
                                  paper.TPCH_SCALE_FACTOR, label="sas-ssd",
                                  device=DeviceKind.SSD, layout=Layout.NSM)
    rows = []
    for bus_mb in bus_rates_mb:
        for cores in core_counts:
            spec = SmartSsdSpec(
                cpu=replace(DEVICE_CPU, cores=cores),
                dram_bus_rate=bus_mb * MB)
            db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
            # Rebuild with the custom spec: attach a fresh device world.
            from repro.host.db import Database
            db = Database()
            db.create_smart_ssd(spec)
            db.create_table("lineitem", lineitem_schema(), Layout.PAX,
                            generate_lineitem(run_scale), "smart-ssd")
            run = run_at_paper_scale(db, q6_query(), "smart", run_scale,
                                     paper.TPCH_SCALE_FACTOR,
                                     label=f"c{cores}-b{bus_mb}")
            speedup = (baseline.elapsed_at_paper_scale
                       / run.elapsed_at_paper_scale)
            rows.append([cores, bus_mb, run.elapsed_at_paper_scale, speedup,
                         run.paper_scale.bottleneck])
    return ExperimentResult(
        experiment="Ablation A2: Q6 speedup vs device cores and DRAM-bus "
                   "rate (baseline: SAS SSD host path)",
        headers=["device cores", "bus MB/s", "elapsed s", "speedup",
                 "bottleneck"],
        rows=rows,
        notes="with enough cores the DRAM bus binds; raising both moves "
              "toward Figure 1's ~10x potential",
    )


def ablation_io_unit(
        run_scale: float = TPCH_RUN_SCALE,
        unit_sizes: Sequence[int] = (4, 8, 16, 32, 64),
) -> ExperimentResult:
    """A3: I/O-unit (command batch) size vs Q6 pushdown elapsed time."""
    rows = []
    for unit_pages in unit_sizes:
        db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
        report = db.execute_placed(q6_query(), "smart",
                                   io_unit_pages=unit_pages)
        from repro.bench.extrapolate import extrapolate_run
        estimate = extrapolate_run(db, q6_query(), report,
                                   paper.TPCH_SCALE_FACTOR / run_scale)
        rows.append([unit_pages, unit_pages * 8192 // 1024,
                     estimate.elapsed_seconds, estimate.bottleneck])
    return ExperimentResult(
        experiment="Ablation A3: Q6 pushdown elapsed vs I/O unit size",
        headers=["pages/unit", "unit KiB", "elapsed s (SF-100)",
                 "bottleneck"],
        rows=rows,
        notes="small units leave per-command firmware overhead unamortized; "
              "the paper measures with 32-page (256 KiB) units",
    )


def ablation_interface_generation(
        run_scale: float = TPCH_RUN_SCALE,
        interfaces: Sequence[str] = ("sata2", "sas6", "sas12", "pcie2x4",
                                     "pcie3x4"),
) -> ExperimentResult:
    """A5: does pushdown survive faster host interfaces?

    §3 notes the protocol "could be extended for PCIe"; Figure 1 argues the
    internal/external gap keeps growing. This ablation replays Q6 across
    host-interface generations at a fixed internal design: pushdown's win
    shrinks as the interface catches up with the internal DRAM bus, and
    inverts once the host can read faster than the device can compute —
    the historically accurate fate of SATA/SAS-era Smart SSDs.
    """
    from dataclasses import replace as dc_replace

    from repro.flash.interface import INTERFACES
    from repro.flash.ssd import SsdSpec
    from repro.host.db import Database

    lineitem = generate_lineitem(run_scale)
    rows = []
    for name in interfaces:
        interface = INTERFACES[name]

        def leg(kind: DeviceKind, placement: str):
            db = Database()
            if kind is DeviceKind.SSD:
                db.create_ssd(SsdSpec(interface=interface))
            else:
                db.create_smart_ssd(SmartSsdSpec(interface=interface))
            db.create_table("lineitem", lineitem_schema(), Layout.PAX,
                            lineitem, kind.value)
            return run_at_paper_scale(db, q6_query(), placement, run_scale,
                                      paper.TPCH_SCALE_FACTOR,
                                      label=f"{name}-{placement}",
                                      device=kind)

        host = leg(DeviceKind.SSD, "host")
        smart = leg(DeviceKind.SMART, "smart")
        rows.append([name, interface.effective_rate / MB,
                     host.elapsed_at_paper_scale,
                     smart.elapsed_at_paper_scale,
                     host.elapsed_at_paper_scale
                     / smart.elapsed_at_paper_scale,
                     host.paper_scale.bottleneck])
    return ExperimentResult(
        experiment="Ablation A5: Q6 pushdown benefit vs host-interface "
                   "generation (fixed internal design)",
        headers=["interface", "effective MB/s", "host s", "smart s",
                 "speedup", "host bottleneck"],
        rows=rows,
        notes="once the interface outruns the internal DRAM bus, the "
              "conventional path is no longer starved and the slow "
              "embedded cores become pure overhead",
    )


def ext_optimizer(
        run_scale: float = 5e-4,
        selectivities: Sequence[int] = (1, 10, 25, 50, 75, 100),
) -> ExperimentResult:
    """E1: does the cost-based optimizer pick the faster placement?"""
    from repro.host.optimizer import choose_placement
    rows = []
    agreements = 0
    for selectivity in selectivities:
        query = synthetic_join_query(selectivity)
        db = make_synthetic_db(DeviceKind.SMART, Layout.PAX, run_scale)
        decision = choose_placement(db, query)
        host = run_at_paper_scale(
            make_synthetic_db(DeviceKind.SMART, Layout.PAX, run_scale),
            query, "host", run_scale, 1.0, label=f"host-{selectivity}")
        smart = run_at_paper_scale(
            make_synthetic_db(DeviceKind.SMART, Layout.PAX, run_scale),
            query, "smart", run_scale, 1.0, label=f"smart-{selectivity}")
        truth = ("smart" if smart.elapsed_at_paper_scale
                 < host.elapsed_at_paper_scale else "host")
        agreements += decision.placement == truth
        rows.append([f"{selectivity}%", decision.placement, truth,
                     decision.estimated_selectivity,
                     host.elapsed_at_paper_scale,
                     smart.elapsed_at_paper_scale])
    return ExperimentResult(
        experiment="Extension E1: optimizer placement vs ground truth "
                   "(selection-with-join)",
        headers=["selectivity", "optimizer picked", "faster placement",
                 "est. selectivity", "host s", "smart s"],
        rows=rows,
        notes=f"agreement: {agreements}/{len(selectivities)}",
    )


def ext_multi_ssd(
        run_scale: float = 0.02,
        device_counts: Sequence[int] = (1, 2, 4, 8),
) -> ExperimentResult:
    """E2: Q6 sharded over an array of Smart SSDs.

    Uses a larger run scale than the other experiments so per-session fixed
    costs do not mask the scan-time scaling.
    """
    rows = []
    base_elapsed = None
    lineitem = generate_lineitem(run_scale)
    for count in device_counts:
        sim = Simulator()
        array = SmartSsdArray(sim, count)
        array.load_partitioned("lineitem", lineitem_schema(), Layout.PAX,
                               lineitem)
        result = array.execute(q6_query())
        if base_elapsed is None:
            base_elapsed = result.elapsed_seconds
        rows.append([count, result.elapsed_seconds * 1e3,
                     base_elapsed / result.elapsed_seconds,
                     result.rows[0]["revenue"]])
    return ExperimentResult(
        experiment="Extension E2: Q6 across a Smart SSD array "
                   "(host as coordinator)",
        headers=["devices", "elapsed ms (run scale)", "scaling x",
                 "revenue (sanity)"],
        rows=rows,
        notes="the §4.3 'parallel DBMS' endpoint: near-linear scaling "
              "until per-session fixed costs dominate",
    )


def ablation_ftl_wear(
        overprovision_levels: Sequence[float] = (0.07, 0.15, 0.25, 0.40),
        rounds: int = 40,
) -> ExperimentResult:
    """A4: FTL write amplification vs over-provisioning under update churn.

    Not a paper experiment, but a validation of the substrate the paper's
    device rests on: sustained random overwrites of a full logical space
    force garbage collection, and the WAF falls as over-provisioning grows
    — the classic flash-management curve.
    """
    import numpy as np

    from repro.flash import NandArray, NandGeometry, PageMappedFtl
    from repro.storage.page import PAGE_SIZE

    # Generous per-die block counts so the requested over-provisioning (not
    # the fixed per-die GC reserve) is the binding constraint.
    geometry = NandGeometry(channels=2, chips_per_channel=2,
                            blocks_per_chip=64, pages_per_block=16)
    blank = bytes(PAGE_SIZE)
    rows = []
    for op_level in overprovision_levels:
        nand = NandArray(geometry)
        ftl = PageMappedFtl(geometry, nand, overprovision=op_level)
        rng = np.random.default_rng(42)
        working_set = ftl.logical_capacity_pages
        for lpn in range(working_set):           # fill once
            ftl.write(lpn, blank)
        for __ in range(rounds * working_set):   # then churn randomly
            ftl.write(int(rng.integers(0, working_set)), blank)
        rows.append([f"{op_level:.0%}", working_set,
                     ftl.stats.write_amplification, ftl.stats.erases])
    return ExperimentResult(
        experiment="Ablation A4: FTL write amplification vs "
                   "over-provisioning (random overwrite churn)",
        headers=["over-provisioning", "logical pages", "WAF", "erases"],
        rows=rows,
        notes="more spare blocks => emptier GC victims => fewer forced "
              "relocations; the device substrate behaves like a real FTL",
    )


def ext_caching_benefit(
        run_scale: float = TPCH_RUN_SCALE,
        repeats: int = 4,
) -> ExperimentResult:
    """E4: §4.3's caching argument, measured.

    "Even when processing the query the usual way is less efficient ...
    we may still want to process the query in the host machine as that
    brings data into the buffer pool that can be used for subsequent
    queries." Strategy A pushes every repetition down; strategy B runs the
    first repetition on the host (populating the buffer pool) and the rest
    from cache.
    """
    query = q6_query()

    smart_db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
    smart_times = [smart_db.execute_placed(query, "smart").elapsed_seconds
                   for __ in range(repeats)]

    host_db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
    host_times = [host_db.execute_placed(query, "host").elapsed_seconds
                  for __ in range(repeats)]

    rows = []
    for index in range(repeats):
        rows.append([index + 1, smart_times[index] * 1e3,
                     host_times[index] * 1e3,
                     sum(smart_times[:index + 1]) * 1e3,
                     sum(host_times[:index + 1]) * 1e3])
    crossover = next(
        (i + 1 for i in range(repeats)
         if sum(host_times[:i + 1]) < sum(smart_times[:i + 1])), None)
    return ExperimentResult(
        experiment="Extension E4: repeated Q6 — pushdown every time vs "
                   "host-once-then-cache",
        headers=["repetition", "smart ms", "host ms",
                 "smart cumulative ms", "host cumulative ms"],
        rows=rows,
        notes=(f"host path is slower cold but (nearly) free warm; "
               f"cumulative crossover at repetition {crossover}"
               if crossover else
               "no crossover within the measured repetitions"),
    )


def ext_concurrent_queries(
        run_scale: float = TPCH_RUN_SCALE,
        session_counts: Sequence[int] = (1, 2, 3, 4),
) -> ExperimentResult:
    """E3: concurrent pushdown sessions contending inside one device.

    Routed through the query scheduler with scan sharing *disabled* and
    admission wide open, so every session runs its own device scan — the
    paper's §4.3 interference scenario, unchanged in semantics from the
    pre-scheduler ``execute_concurrent`` implementation.
    """
    from repro.sched import QueryScheduler, SchedulerConfig
    rows = []
    solo_elapsed = None
    for count in session_counts:
        db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
        scheduler = QueryScheduler(db, SchedulerConfig(
            max_inflight_per_device=count, share_scans=False))
        for __ in range(count):
            scheduler.submit(q6_query(), "smart")
        reports = scheduler.gather()
        window = max(r.elapsed_seconds for r in reports)
        if solo_elapsed is None:
            solo_elapsed = window
        rows.append([count, window, window / solo_elapsed,
                     window / (solo_elapsed * count)])
    return ExperimentResult(
        experiment="Extension E3: concurrent Q6 pushdown sessions on one "
                   "Smart SSD",
        headers=["sessions", "window s (run scale)", "slowdown vs solo",
                 "vs perfect sharing"],
        rows=rows,
        notes="sessions contend for the device CPU and DRAM bus; the "
              "device saturates rather than thrashes (<= 1.0 means the "
              "batch shares perfectly)",
    )


def ext_scheduler(
        run_scale: float = TPCH_RUN_SCALE,
        fan_ins: Sequence[int] = (1, 2, 4, 8),
) -> ExperimentResult:
    """E5: cooperative scan sharing vs serial execution.

    Submits ``fan_in`` identical Q6 queries through the scheduler with scan
    sharing enabled: the device runs one circular scan and multiplexes it
    into per-query predicate/aggregate evaluation, so NAND traffic stays
    ~flat while queries/sec scales with fan-in. The serial baseline runs
    the same queries back to back through ``execute_placed``.
    """
    from repro.sched import QueryScheduler
    solo_db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
    solo = solo_db.execute_placed(q6_query(), "smart")
    solo_pages = solo.io.pages_read_device

    rows = []
    for fan_in in fan_ins:
        db = make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale)
        scheduler = QueryScheduler(db)
        for __ in range(fan_in):
            scheduler.submit(q6_query(), "smart")
        scheduler.gather()
        window = scheduler.stats["window_seconds"]
        serial = solo.elapsed_seconds * fan_in
        pages = scheduler.stats["shared_pages_read"] or solo_pages
        skipped = scheduler.stats["pages_skipped"]
        rows.append([fan_in, window, serial / window, fan_in / window,
                     pages, fan_in * solo_pages - pages, skipped])
    return ExperimentResult(
        experiment="Extension E5: scheduled Q6 batches with cooperative "
                   "scan sharing vs serial execution",
        headers=["fan-in", "window s (run scale)", "speedup vs serial",
                 "queries/s (virtual)", "NAND pages read", "pages saved",
                 "pages skipped"],
        rows=rows,
        notes="one shared device scan serves the whole batch: riders pay "
              "only marginal predicate/aggregate work, so NAND reads stay "
              "flat while throughput scales with fan-in",
    )


def ext_serving(
        run_scale: float = 2 * TPCH_RUN_SCALE,
        shard_counts: Sequence[int] = (1, 2, 4),
        queries_per_tenant: int = 6,
) -> ExperimentResult:
    """E6: multi-tenant serving over a sharded fleet, traffic replay.

    Replays the same two-tenant mix (an ``analytics`` tenant issuing Q1
    variants and a ``dashboard`` tenant issuing Q6 variants) against
    LINEITEM hash-sharded over 1, 2 and 4 Smart SSDs. Scatter/gather
    splits every logical query into per-shard pushdowns that the
    scheduler's shared scans drain in parallel, so virtual-time
    queries/sec scales with the shard count. Each world then repeats one
    query to measure the result cache's O(1) hit latency against the cold
    run.
    """
    import numpy as np

    from repro.host.catalog import ShardSpec
    from repro.host.db import Database
    from repro.sched.qos import TenantSpec
    from repro.serve import Frontend
    from repro.workloads import q1_query

    schema = lineitem_schema()
    lineitem = generate_lineitem(run_scale)

    rows = []
    for shard_count in shard_counts:
        db = Database()
        devices = [db.create_smart_ssd(SmartSsdSpec(name=f"smart-{i}"))
                   for i in range(shard_count)]
        db.catalog.create_sharded_table(
            "lineitem", schema, Layout.PAX, lineitem, devices,
            spec=ShardSpec(kind="hash", key="l_orderkey"))
        # Generous buckets: this experiment measures execution scaling,
        # not admission shaping, so QoS delays stay at zero.
        frontend = Frontend(db, tenants=(
            TenantSpec("analytics", rate=500.0, burst=32.0),
            TenantSpec("dashboard", rate=500.0, burst=32.0)))

        handles = []
        for i in range(queries_per_tenant):
            arrival = i * 1e-4
            handles.append(frontend.submit(q1_query(delta_days=60 + i),
                                           tenant="analytics", at=arrival))
            handles.append(frontend.submit(q6_query(year=1993 + i % 3),
                                           tenant="dashboard", at=arrival))
        frontend.gather()

        latencies = [handle.report.elapsed_seconds for handle in handles]
        window = frontend.scheduler.stats["window_seconds"]
        cold = handles[0].report.elapsed_seconds

        hit = frontend.submit(q1_query(delta_days=60), tenant="analytics")
        frontend.gather()
        assert hit.cached, "repeat query must be served from the cache"

        rows.append([
            shard_count, window, len(handles) / window,
            float(np.percentile(latencies, 50)) * 1e3,
            float(np.percentile(latencies, 99)) * 1e3,
            cold * 1e3, hit.report.elapsed_seconds * 1e3,
            cold / hit.report.elapsed_seconds,
        ])
    return ExperimentResult(
        experiment="Extension E6: multi-tenant serving over a sharded "
                   "fleet (traffic replay, virtual time)",
        headers=["shards", "window s", "queries/s (virtual)", "p50 ms",
                 "p99 ms", "cold ms", "cache hit ms", "hit speedup"],
        rows=rows,
        notes="scatter/gather fans each logical query across the shards "
              "and re-merges on the host, so the batch window shrinks "
              "with the fleet; repeats are version-checked cache hits "
              "that never touch a device",
    )


def _htap_gc_face_off(rounds: int = 12,
                      hot_frac: float = 0.05,
                      hot_prob: float = 0.95) -> dict:
    """GC policy face-off under overwrite skew (seeded, deterministic).

    Fills the logical space once, then churns it with a skewed overwrite
    stream where ``hot_frac`` of the pages receive ``hot_prob`` of the
    writes. Hot blocks invalidate themselves quickly, so greedy min-valid
    victim selection keeps cleaning blocks whose pages were about to die
    anyway; cost-benefit's age term waits them out and cleans cold blocks
    when it is actually worth it — the classic LFS/eNVy result.
    """
    import numpy as np

    from repro.flash import (
        CostBenefitGcPolicy,
        NandArray,
        NandGeometry,
        PageMappedFtl,
    )
    from repro.storage.page import PAGE_SIZE

    geometry = NandGeometry(channels=2, chips_per_channel=2,
                            blocks_per_chip=48, pages_per_block=16)
    blank = bytes(PAGE_SIZE)
    legs = {}
    for label, policy in (
            ("greedy", "greedy"),
            ("cost-benefit+wl", CostBenefitGcPolicy(wear_leveling=True))):
        nand = NandArray(geometry)
        ftl = PageMappedFtl(geometry, nand, gc_policy=policy)
        working_set = ftl.logical_capacity_pages
        for lpn in range(working_set):           # fill once
            ftl.write(lpn, blank)
        hot = max(1, int(working_set * hot_frac))
        rng = np.random.default_rng(42)
        total = rounds * working_set
        draws = rng.random(total)
        hots = rng.integers(0, hot, total)
        colds = rng.integers(hot, working_set, total)
        for i in range(total):                   # then churn, skewed
            ftl.write(int(hots[i] if draws[i] < hot_prob else colds[i]),
                      blank)
        legs[label] = {
            "wa": ftl.stats.write_amplification,
            "wear_spread": ftl.wear_spread(),
            "erases": ftl.stats.erases,
        }
    return legs


def _htap_mixed_world(run_scale: float, scans: int, dml_streams: int,
                      with_dml: bool) -> dict:
    """One scheduler window: shared Q6 scans, optionally with DML streams.

    The scans target LINEITEM; the DML streams target a separate hot
    table on the *same device*, so interference flows through the shared
    interface/CPU — never through the scan results themselves.
    """
    import numpy as np

    from repro.engine.expressions import Col, Compare, Const, Mul
    from repro.host.db import Database
    from repro.sched import QueryScheduler
    from repro.storage import Column, Int32Type, Schema

    db = Database()
    db.create_smart_ssd()
    db.create_table("lineitem", lineitem_schema(), Layout.PAX,
                    generate_lineitem(run_scale), "smart-ssd")
    hot_schema = Schema([Column("k", Int32Type()), Column("v", Int32Type())])
    hot_rows = np.zeros(20_000, dtype=hot_schema.numpy_dtype())
    hot_rows["k"] = np.arange(20_000)
    hot_rows["v"] = np.arange(20_000) % 97
    db.create_table("hot", hot_schema, Layout.PAX, hot_rows,
                    "smart-ssd")

    scheduler = QueryScheduler(db)
    for i in range(scans):
        scheduler.submit(q6_query(), "smart", at=i * 1e-4)
    tickets = []
    if with_dml:
        for j in range(dml_streams):
            tickets.append(scheduler.submit_update(
                "hot",
                Compare(Col("k"), ">=", Const(j * 3_000)),
                {"v": Mul(Col("v"), Const(2))},
                at=j * 2e-4))
    reports = scheduler.gather()
    flushed = [t for t in tickets if t.flushed]
    return {
        "reports": reports,
        "latencies": [r.elapsed_seconds for r in reports],
        "rows_changed": scheduler.stats["write_rows_changed"],
        "pages_flushed": scheduler.stats["write_pages_flushed"],
        "group_flushes": scheduler.stats["group_flushes"],
        "host_writes": sum(t.host_writes for t in flushed),
        "gc_relocations": sum(t.gc_relocations for t in flushed),
    }


def htap_metrics(run_scale: float = 0.002,
                 rounds: int = 12,
                 scans: int = 6,
                 dml_streams: int = 6) -> dict:
    """E7 raw metrics (floats) — shared by :func:`ext_htap` and the perf
    harness's floor/ceiling gates.

    Both halves are seeded and run in virtual time, so every value is
    deterministic and machine-independent.
    """
    import numpy as np

    legs = _htap_gc_face_off(rounds=rounds)
    greedy = legs["greedy"]
    costbenefit = legs["cost-benefit+wl"]

    base = _htap_mixed_world(run_scale, scans, dml_streams, with_dml=False)
    mixed = _htap_mixed_world(run_scale, scans, dml_streams, with_dml=True)
    identical = all(
        b.rows == m.rows
        for b, m in zip(base["reports"], mixed["reports"][:scans]))
    p99_base = float(np.percentile(base["latencies"], 99))
    p99_mixed = float(np.percentile(mixed["latencies"][:scans], 99))

    host_writes = mixed["host_writes"]
    device_wa = ((host_writes + mixed["gc_relocations"]) / host_writes
                 if host_writes else 0.0)
    return {
        "htap_greedy_wa": greedy["wa"],
        "htap_costbenefit_wa": costbenefit["wa"],
        "htap_wa_policy_gain_x": greedy["wa"] / costbenefit["wa"],
        "htap_greedy_wear_spread": float(greedy["wear_spread"]),
        "htap_wear_spread_erases": float(costbenefit["wear_spread"]),
        "htap_scan_p99_base_ms": p99_base * 1e3,
        "htap_scan_p99_mixed_ms": p99_mixed * 1e3,
        "htap_scan_p99_interference_x": p99_mixed / p99_base,
        "htap_scans_bit_identical": float(identical),
        "htap_dml_rows_changed": float(mixed["rows_changed"]),
        "htap_dml_pages_flushed": float(mixed["pages_flushed"]),
        "htap_group_flushes": float(mixed["group_flushes"]),
        "htap_dml_device_wa": device_wa,
    }


def ext_htap(run_scale: float = 0.002,
             rounds: int = 12,
             scans: int = 6,
             dml_streams: int = 6) -> ExperimentResult:
    """E7: the HTAP write path — GC policies under skew, DML vs scans.

    Two halves on the same substrate. First, a seeded overwrite-skew
    churn compares the pluggable GC policies head to head: cost-benefit
    with wear leveling must beat greedy on both write amplification and
    wear spread. Second, a full-stack mixed window runs concurrent DML
    streams (scheduler write units, group-flushed) against shared Q6
    scans on the same device: scan results must stay bit-identical to a
    DML-free window, and scan p99 may only degrade within a small bound
    because writes pass their own admission gate.
    """
    metrics = htap_metrics(run_scale=run_scale, rounds=rounds,
                           scans=scans, dml_streams=dml_streams)
    rows = [
        ["greedy WA (skewed churn)",
         f"{metrics['htap_greedy_wa']:.3f}"],
        ["cost-benefit+WL WA",
         f"{metrics['htap_costbenefit_wa']:.3f}"],
        ["WA policy gain", fmt_ratio(metrics["htap_wa_policy_gain_x"])],
        ["greedy wear spread (erases)",
         f"{metrics['htap_greedy_wear_spread']:.0f}"],
        ["cost-benefit+WL wear spread (erases)",
         f"{metrics['htap_wear_spread_erases']:.0f}"],
        ["scan p99, scans only (ms)",
         f"{metrics['htap_scan_p99_base_ms']:.3f}"],
        ["scan p99, scans + DML (ms)",
         f"{metrics['htap_scan_p99_mixed_ms']:.3f}"],
        ["scan p99 interference",
         fmt_ratio(metrics["htap_scan_p99_interference_x"])],
        ["scan results bit-identical with DML",
         bool(metrics["htap_scans_bit_identical"])],
        ["DML rows changed", f"{metrics['htap_dml_rows_changed']:.0f}"],
        ["DML pages flushed (group flush)",
         f"{metrics['htap_dml_pages_flushed']:.0f}"],
        ["group flushes", f"{metrics['htap_group_flushes']:.0f}"],
        ["DML device-level WA", f"{metrics['htap_dml_device_wa']:.2f}"],
    ]
    return ExperimentResult(
        experiment="Extension E7: HTAP write path — GC policy face-off "
                   "and concurrent DML vs shared scans",
        headers=["measure", "value"],
        rows=rows,
        notes="age-aware cost-benefit GC waits out hot blocks that are "
              "about to self-invalidate, cutting WA and wear spread vs "
              "greedy; in the mixed window, write units pass a separate "
              "per-device admission gate, so shared scans stay "
              "bit-identical and p99 barely moves",
    )
