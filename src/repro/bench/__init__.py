"""Benchmark harness: one runner per paper table/figure.

Each experiment in :mod:`repro.bench.figures` runs the full functional
simulation at a reduced scale factor, extrapolates to the paper's scale
with the analytic pipeline model (:mod:`repro.bench.extrapolate`), and
returns rows that pair the paper's reported numbers
(:mod:`repro.bench.paper`) with the reproduction's. ``benchmarks/`` wraps
each experiment in a pytest-benchmark target that prints the comparison
table and asserts the qualitative shape.
"""

from repro.bench.extrapolate import PaperScaleEstimate, extrapolate_run
from repro.bench.formatting import format_table
from repro.bench.runners import (
    DeviceKind,
    MeasuredRun,
    make_synthetic_db,
    make_tpch_db,
    run_at_paper_scale,
)

__all__ = [
    "DeviceKind",
    "MeasuredRun",
    "PaperScaleEstimate",
    "extrapolate_run",
    "format_table",
    "make_synthetic_db",
    "make_tpch_db",
    "run_at_paper_scale",
]
