"""Shared experiment plumbing: database builders and measured runs."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.bench.extrapolate import PaperScaleEstimate, extrapolate_run
from repro.engine.plans import Query
from repro.flash.hdd import HddSpec
from repro.flash.ssd import SsdSpec
from repro.host.db import Database
from repro.model.report import ExecutionReport
from repro.smart.device import SmartSsdSpec
from repro.storage import Layout
from repro.workloads import (
    generate_lineitem,
    generate_part,
    generate_synthetic64_r,
    generate_synthetic64_s,
    lineitem_schema,
    part_schema,
    synthetic64_r_schema,
    synthetic64_s_schema,
)

#: Default run scale for TPC-H experiments (12,000 LINEITEM rows — large
#: enough for stable counter averages, small enough to simulate in ~1 s).
TPCH_RUN_SCALE = 0.002

#: Default run scale for Synthetic64 experiments, relative to the paper's
#: 400M-row S table.
SYNTHETIC_RUN_SCALE = 0.0001


class DeviceKind(enum.Enum):
    """Which device configuration an experiment leg runs on."""

    HDD = "sas-hdd"
    SSD = "sas-ssd"
    SMART = "smart-ssd"


@dataclass
class MeasuredRun:
    """One experiment leg: the functional run plus its extrapolation."""

    label: str
    device: DeviceKind
    placement: str
    layout: Layout
    report: ExecutionReport
    paper_scale: PaperScaleEstimate

    @property
    def elapsed_at_paper_scale(self) -> float:
        """Extrapolated elapsed seconds at the paper's data size."""
        return self.paper_scale.elapsed_seconds


def make_tpch_db(device: DeviceKind, layout: Layout,
                 scale: float = TPCH_RUN_SCALE) -> Database:
    """A fresh world with LINEITEM and PART loaded on the chosen device."""
    db = Database()
    name = _attach(db, device)
    db.create_table("lineitem", lineitem_schema(), layout,
                    generate_lineitem(scale), name)
    db.create_table("part", part_schema(), layout, generate_part(scale), name)
    return db


def make_synthetic_db(device: DeviceKind, layout: Layout,
                      scale: float = SYNTHETIC_RUN_SCALE) -> Database:
    """A fresh world with the Synthetic64 pair loaded (R scaled to match S).

    The paper's R:S size ratio (1M : 400M rows) is preserved.
    """
    db = Database()
    name = _attach(db, device)
    # R scales with the same factor as S, floored so the FK join always has
    # a few hundred distinct build keys even at tiny run scales.
    r_rows = generate_synthetic64_r(max(scale, 5e-4))
    s_rows = generate_synthetic64_s(scale, len(r_rows))
    db.create_table("synthetic64_r", synthetic64_r_schema(), layout,
                    r_rows, name)
    db.create_table("synthetic64_s", synthetic64_s_schema(), layout,
                    s_rows, name)
    return db


def run_at_paper_scale(db: Database, query: Query, placement: str,
                       run_scale: float, paper_scale: float,
                       label: str = "", device: DeviceKind = DeviceKind.SMART,
                       layout: Layout = Layout.PAX) -> MeasuredRun:
    """Execute functionally at ``run_scale``, extrapolate to ``paper_scale``."""
    report = db.execute(query, placement=placement)
    estimate = extrapolate_run(db, query, report,
                               factor=paper_scale / run_scale)
    return MeasuredRun(label=label or query.name, device=device,
                       placement=placement, layout=layout, report=report,
                       paper_scale=estimate)


def _attach(db: Database, device: DeviceKind) -> str:
    if device is DeviceKind.HDD:
        db.create_hdd(HddSpec())
    elif device is DeviceKind.SSD:
        db.create_ssd(SsdSpec())
    else:
        db.create_smart_ssd(SmartSsdSpec())
    return device.value
