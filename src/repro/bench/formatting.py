"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an ASCII table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(width)
                         for value, width in zip(values, widths)).rstrip()

    rule = "-" * max(len(title), sum(widths) + 2 * (len(widths) - 1))
    out = [title, rule, line(headers), rule]
    out.extend(line(row) for row in cells)
    out.append(rule)
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
