"""The paper's reported numbers, used as comparison targets.

Values come from the supplied text (IEEE Data Eng. Bulletin 2014 companion
of the SIGMOD 2013 paper). Where the text gives only a ratio, the ratio is
recorded; absolute seconds are never asserted against — the reproduction
runs on a simulator, not the authors' testbed — only shapes and factors.
"""

#: Table 2 — maximum sequential read bandwidth with 32-page (256 KB) I/Os.
TABLE2_SAS_SSD_MB_S = 550.0
TABLE2_SMART_INTERNAL_MB_S = 1560.0
TABLE2_INTERNAL_SPEEDUP = 2.8

#: Figure 3 — TPC-H Q6 on LINEITEM SF-100.
FIG3_Q6_PAX_SPEEDUP = 1.7     # Smart SSD (PAX) over SAS SSD
FIG3_Q6_SELECTIVITY = 0.006   # "the selectivity factor (0.6%) of this query"
FIG3_Q6_TUPLES_PER_PAGE = 51  # "five predicates, 51 tuples per data page"

#: Figure 5 — selection-with-join on Synthetic64_R x Synthetic64_S.
FIG5_JOIN_SPEEDUP_AT_1PCT = 2.2
FIG5_SELECTIVITIES_PCT = (1, 10, 25, 50, 75, 100)

#: Figure 7 — TPC-H Q14 on LINEITEM x PART, SF-100.
FIG7_Q14_PAX_SPEEDUP = 1.3

#: Table 3 — energy for TPC-H Q6 (ratios relative to Smart SSD PAX).
TABLE3_IDLE_POWER_W = 235.0
TABLE3_HDD_SYSTEM_ENERGY_RATIO = 11.6
TABLE3_HDD_IO_ENERGY_RATIO = 14.3
TABLE3_SSD_SYSTEM_ENERGY_RATIO = 1.9
TABLE3_SSD_IO_ENERGY_RATIO = 1.4
TABLE3_HDD_OVER_IDLE_RATIO = 12.4
TABLE3_SSD_OVER_IDLE_RATIO = 2.3

#: Figure 1 — bandwidth trend: the internal/interface gap approaches ~10x.
FIG1_PROJECTED_GAP = 10.0
FIG1_BASELINE_MB_S = 375.0

#: Paper workload scales.
TPCH_SCALE_FACTOR = 100.0
LINEITEM_GB = 90.0
PART_GB = 3.0
SYNTHETIC_R_ROWS = 1_000_000
SYNTHETIC_S_ROWS = 400_000_000
