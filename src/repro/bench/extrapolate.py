"""Paper-scale extrapolation from scaled-down functional runs.

A functional run at scale ``s`` yields exact work counters and byte flows;
both scale linearly with data size, so multiplying by ``target / s`` and
evaluating the closed-form pipeline model reproduces the paper-scale
elapsed time. Cache-residency flags (large vs. small hash tables) are
re-decided at the *target* scale — a 400-row PART sample builds a
cache-resident table, the SF-100 PART table does not.

Energy at paper scale follows the same decomposition the simulator uses:
idle base x elapsed, plus per-component active energy derived from the
stage times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.plans import Query
from repro.flash.hdd import Hdd, HddSpec
from repro.flash.ssd import Ssd, SsdSpec
from repro.host.db import Database
from repro.model.analytic import (
    ScanJobModel,
    StageTimes,
    host_scan_times_hdd,
    host_scan_times_ssd,
    smart_scan_times,
)
from repro.model.costs import DEVICE_CPU, HOST_CPU
from repro.model.energy import DeviceActivity, SystemEnergy
from repro.model.report import ExecutionReport
from repro.smart.device import SmartSsd
from repro.storage.page import PAGE_SIZE


@dataclass(frozen=True)
class PaperScaleEstimate:
    """One run extrapolated to the paper's scale."""

    elapsed_seconds: float
    bottleneck: str
    stages: StageTimes
    energy: SystemEnergy
    device_cycles: float
    host_cycles: float


def _hash_table_rows_at_target(db: Database, query: Query,
                               factor: float) -> Optional[int]:
    if query.join is None:
        return None
    build = db.catalog.table(query.join.build_table)
    return int(build.tuple_count * factor)


def _hash_table_nbytes_at_target(db: Database, query: Query,
                                 factor: float) -> int:
    if query.join is None:
        return 0
    from repro.smart.programs.base import estimated_hash_table_nbytes
    build = db.catalog.table(query.join.build_table)
    return int(estimated_hash_table_nbytes(build.heap, query) * factor)


def extrapolate_run(db: Database, query: Query, report: ExecutionReport,
                    factor: float) -> PaperScaleEstimate:
    """Scale a measured run by ``factor`` and evaluate the pipeline model.

    ``factor`` is (paper scale) / (run scale) — e.g. 100 / 0.02 = 5000.
    """
    table = db.catalog.table(query.table)
    device = db.device(table.device_name)

    data_nbytes = table.page_count * PAGE_SIZE
    if query.join is not None:
        build = db.catalog.table(query.join.build_table)
        data_nbytes += build.page_count * PAGE_SIZE
    data_target = data_nbytes * factor

    counters = report.counters.scaled(factor)
    table_nbytes_target = _hash_table_nbytes_at_target(db, query, factor)
    device_large = table_nbytes_target > db.costs.device_cache_nbytes
    host_large = table_nbytes_target > db.costs.host_cache_nbytes
    device_cycles = db.costs.cycles(counters, large_hash_table=device_large)
    host_cycles = db.costs.cycles(counters, large_hash_table=host_large)

    if report.placement == "smart":
        result_nbytes = report.io.bytes_over_interface * factor
        touched = max(0, (report.io.bytes_over_dram_bus - data_nbytes
                          - report.io.bytes_over_interface)) * factor
        job = ScanJobModel(data_nbytes=data_target, touched_nbytes=touched,
                           result_nbytes=result_nbytes,
                           device_raw_cycles=device_cycles,
                           host_raw_cycles=host_cycles)
        cpu = device.cpu_spec if isinstance(device, SmartSsd) else DEVICE_CPU
        stages = smart_scan_times(job, device.spec, cpu)
        energy = _smart_energy(db, device, stages, device_cycles,
                               report, factor)
    elif isinstance(device, Hdd):
        job = ScanJobModel(data_nbytes=data_target, touched_nbytes=0,
                           result_nbytes=0, device_raw_cycles=device_cycles,
                           host_raw_cycles=host_cycles)
        stages = host_scan_times_hdd(job, device.spec,
                                     db.config.host.cpu)
        energy = _host_energy(db, device, stages, host_cycles, hdd=True)
    else:
        job = ScanJobModel(data_nbytes=data_target, touched_nbytes=0,
                           result_nbytes=0, device_raw_cycles=device_cycles,
                           host_raw_cycles=host_cycles)
        stages = host_scan_times_ssd(job, device.spec,
                                     db.config.host.cpu)
        energy = _host_energy(db, device, stages, host_cycles, hdd=False)

    return PaperScaleEstimate(
        elapsed_seconds=stages.elapsed,
        bottleneck=stages.bottleneck,
        stages=stages,
        energy=energy,
        device_cycles=device_cycles,
        host_cycles=host_cycles,
    )


def _smart_energy(db: Database, device: Any, stages: StageTimes,
                  device_cycles: float, report: ExecutionReport,
                  factor: float) -> SystemEnergy:
    cpu_spec = device.cpu_spec
    power = device.spec.power
    activity = DeviceActivity(
        name=device.spec.name,
        idle_w=power.idle_w,
        active_delta_w=power.active_w - power.idle_w,
        io_busy_seconds=min(stages.elapsed,
                            max(stages.dram_bus, stages.interface)),
        cpu_active_delta_w=cpu_spec.active_delta_w,
        cpu_busy_core_seconds=cpu_spec.core_seconds(device_cycles),
    )
    # Host CPU at paper scale: the measured per-run core-seconds scale with
    # the data (finalize/merge work is constant, GET handling linear).
    host_core_seconds = report.host_cpu_core_seconds * factor
    return db.energy_meter.measure(stages.elapsed, host_core_seconds,
                                   [activity])


def _host_energy(db: Database, device: Any, stages: StageTimes,
                 host_cycles: float, hdd: bool) -> SystemEnergy:
    power = device.spec.power
    activity = DeviceActivity(
        name=device.spec.name,
        idle_w=power.idle_w,
        active_delta_w=power.active_w - power.idle_w,
        io_busy_seconds=min(stages.elapsed,
                            stages.interface if not hdd
                            else stages.interface + stages.positioning),
    )
    host_core_seconds = db.config.host.cpu.core_seconds(host_cycles)
    return db.energy_meter.measure(stages.elapsed, host_core_seconds,
                                   [activity])
