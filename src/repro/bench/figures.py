"""Experiment runners: one function per paper table/figure.

Each returns an :class:`ExperimentResult` with structured rows (paper value
next to measured value where the paper reports one) and a formatted table.
The ``benchmarks/`` suite wraps these, prints the tables, and asserts the
qualitative shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.bench import paper
from repro.bench.formatting import format_table
from repro.bench.runners import (
    SYNTHETIC_RUN_SCALE,
    TPCH_RUN_SCALE,
    DeviceKind,
    MeasuredRun,
    make_synthetic_db,
    make_tpch_db,
    run_at_paper_scale,
)
from repro.flash.interface import bandwidth_trend
from repro.model.costs import DEVICE_CPU
from repro.sim import Simulator
from repro.smart.device import SmartSsd, SmartSsdSpec
from repro.storage import Layout
from repro.storage.page import PAGE_SIZE
from repro.units import MB
from repro.workloads import (
    SYNTHETIC64_S_ROWS_AT_SF1,
    q6_query,
    q14_query,
    synthetic_join_query,
)


@dataclass
class ExperimentResult:
    """Structured output of one experiment."""

    experiment: str
    headers: list[str]
    rows: list[list[Any]]
    runs: dict[str, MeasuredRun] = field(default_factory=dict)
    notes: str = ""

    def table(self) -> str:
        """The paper-vs-measured comparison as plain text."""
        text = format_table(self.experiment, self.headers, self.rows)
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (for plotting / downstream analysis)."""
        return {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [[_plain(value) for value in row] for row in self.rows],
            "notes": self.notes,
        }


def _plain(value):
    """Coerce NumPy scalars etc. to plain JSON-friendly Python values."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, bytes):
        return value.decode("ascii", "replace")
    return value


# ---------------------------------------------------------------------------
# Figure 1 — bandwidth trends
# ---------------------------------------------------------------------------

def fig1_bandwidth_trends() -> ExperimentResult:
    """Host-interface vs. SSD-internal bandwidth, relative to 2007."""
    rows = []
    for entry in bandwidth_trend():
        rows.append([int(entry["year"]), entry["interface_mb_s"],
                     entry["internal_mb_s"], entry["interface_x"],
                     entry["internal_x"], entry["gap_x"]])
    return ExperimentResult(
        experiment="Figure 1: bandwidth trends (relative to 375 MB/s, 2007)",
        headers=["year", "interface MB/s", "internal MB/s",
                 "interface x", "internal x", "gap x"],
        rows=rows,
        notes=(f"paper: gap approaches ~{paper.FIG1_PROJECTED_GAP:.0f}x; "
               f"measured end-of-roadmap gap {rows[-1][5]:.1f}x"),
    )


# ---------------------------------------------------------------------------
# Table 2 — sequential read bandwidth
# ---------------------------------------------------------------------------

def table2_sequential_read(page_count: int = 8192) -> ExperimentResult:
    """Measure sustained sequential read bandwidth with 32-page I/Os."""
    from repro.sim import Resource

    results = []
    for path in ("host", "internal"):
        sim = Simulator()
        device = SmartSsd(sim, SmartSsdSpec(verify_ecc=False))
        blank = bytes(PAGE_SIZE)
        first = device.load_extent([blank] * page_count)
        window = Resource(sim, 8, name="qd")  # queue depth 8, as an OS would

        def unit_reader(lpns):
            yield window.request()
            try:
                if path == "host":
                    yield from device.host_read(lpns)
                else:
                    yield from device.internal_read(lpns)
            finally:
                window.release()

        def reader():
            units = []
            for start in range(first, first + page_count, 32):
                lpns = list(range(start, min(start + 32,
                                             first + page_count)))
                units.append(sim.process(unit_reader(lpns)))
            yield sim.all_of(units)

        sim.process(reader())
        sim.run()
        rate = page_count * PAGE_SIZE / sim.now / MB
        results.append(rate)
    host_rate, internal_rate = results
    rows = [
        ["SAS SSD (external)", paper.TABLE2_SAS_SSD_MB_S, host_rate],
        ["Smart SSD (internal)", paper.TABLE2_SMART_INTERNAL_MB_S,
         internal_rate],
        ["internal speedup", paper.TABLE2_INTERNAL_SPEEDUP,
         internal_rate / host_rate],
    ]
    return ExperimentResult(
        experiment="Table 2: max sequential read bandwidth, 32-page I/Os",
        headers=["path", "paper MB/s (or x)", "measured MB/s (or x)"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Figure 3 — TPC-H Q6
# ---------------------------------------------------------------------------

def fig3_q6(run_scale: float = TPCH_RUN_SCALE) -> ExperimentResult:
    """Q6 elapsed: SAS SSD (host, NSM) vs Smart SSD (NSM and PAX)."""
    legs = {
        "sas-ssd": run_at_paper_scale(
            make_tpch_db(DeviceKind.SSD, Layout.NSM, run_scale), q6_query(),
            "host", run_scale, paper.TPCH_SCALE_FACTOR, label="sas-ssd",
            device=DeviceKind.SSD, layout=Layout.NSM),
        "smart-nsm": run_at_paper_scale(
            make_tpch_db(DeviceKind.SMART, Layout.NSM, run_scale), q6_query(),
            "smart", run_scale, paper.TPCH_SCALE_FACTOR, label="smart-nsm",
            layout=Layout.NSM),
        "smart-pax": run_at_paper_scale(
            make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale), q6_query(),
            "smart", run_scale, paper.TPCH_SCALE_FACTOR, label="smart-pax",
            layout=Layout.PAX),
    }
    base = legs["sas-ssd"].elapsed_at_paper_scale
    rows = []
    paper_speedups = {"sas-ssd": 1.0, "smart-nsm": None,
                      "smart-pax": paper.FIG3_Q6_PAX_SPEEDUP}
    for name, run in legs.items():
        speedup = base / run.elapsed_at_paper_scale
        rows.append([name, run.elapsed_at_paper_scale,
                     paper_speedups[name] if paper_speedups[name] else "-",
                     speedup, run.paper_scale.bottleneck])
    return ExperimentResult(
        experiment="Figure 3: TPC-H Q6 elapsed time (LINEITEM SF-100)",
        headers=["configuration", "elapsed s (SF-100)", "paper speedup",
                 "measured speedup", "bottleneck"],
        rows=rows,
        runs=legs,
    )


# ---------------------------------------------------------------------------
# Figure 5 — join selectivity sweep
# ---------------------------------------------------------------------------

def fig5_join_selectivity(
        run_scale: float = 5e-4,
        selectivities: Sequence[int] = paper.FIG5_SELECTIVITIES_PCT,
) -> ExperimentResult:
    """Selection-with-join elapsed vs. selectivity, SSD host vs Smart PAX.

    ``run_scale`` defaults to 5e-4 — exactly the floor of the R generator —
    so R and S scale by the same factor and the extrapolated build-side
    counters match the paper's 1M-row R table.
    """
    paper_factor = 1.0  # synthetic tables are defined at full size already
    factor_scale = run_scale  # extrapolate by 1/run_scale
    rows = []
    runs: dict[str, MeasuredRun] = {}
    for selectivity in selectivities:
        query = synthetic_join_query(selectivity)
        host_db = make_synthetic_db(DeviceKind.SSD, Layout.PAX, run_scale)
        host = run_at_paper_scale(host_db, query, "host", factor_scale,
                                  paper_factor,
                                  label=f"host-{selectivity}",
                                  device=DeviceKind.SSD)
        smart_db = make_synthetic_db(DeviceKind.SMART, Layout.PAX, run_scale)
        smart = run_at_paper_scale(smart_db, query, "smart", factor_scale,
                                   paper_factor,
                                   label=f"smart-{selectivity}")
        runs[f"host-{selectivity}"] = host
        runs[f"smart-{selectivity}"] = smart
        speedup = (host.elapsed_at_paper_scale
                   / smart.elapsed_at_paper_scale)
        expected = (paper.FIG5_JOIN_SPEEDUP_AT_1PCT
                    if selectivity == 1 else "-")
        rows.append([f"{selectivity}%", host.elapsed_at_paper_scale,
                     smart.elapsed_at_paper_scale, expected, speedup])
    return ExperimentResult(
        experiment=("Figure 5: selection-with-join elapsed vs. selectivity "
                    "(R 1M x S 400M rows)"),
        headers=["selectivity", "SAS SSD s", "Smart SSD (PAX) s",
                 "paper speedup", "measured speedup"],
        rows=rows,
        runs=runs,
        notes="paper: up to 2.2x at 1%, saturating toward parity at 100%",
    )


# ---------------------------------------------------------------------------
# Figure 7 — TPC-H Q14
# ---------------------------------------------------------------------------

def fig7_q14(run_scale: float = TPCH_RUN_SCALE) -> ExperimentResult:
    """Q14 elapsed: SAS SSD (host, NSM) vs Smart SSD (NSM and PAX)."""
    legs = {
        "sas-ssd": run_at_paper_scale(
            make_tpch_db(DeviceKind.SSD, Layout.NSM, run_scale), q14_query(),
            "host", run_scale, paper.TPCH_SCALE_FACTOR, label="sas-ssd",
            device=DeviceKind.SSD, layout=Layout.NSM),
        "smart-nsm": run_at_paper_scale(
            make_tpch_db(DeviceKind.SMART, Layout.NSM, run_scale),
            q14_query(), "smart", run_scale, paper.TPCH_SCALE_FACTOR,
            label="smart-nsm", layout=Layout.NSM),
        "smart-pax": run_at_paper_scale(
            make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale),
            q14_query(), "smart", run_scale, paper.TPCH_SCALE_FACTOR,
            label="smart-pax", layout=Layout.PAX),
    }
    base = legs["sas-ssd"].elapsed_at_paper_scale
    paper_speedups = {"sas-ssd": 1.0, "smart-nsm": None,
                      "smart-pax": paper.FIG7_Q14_PAX_SPEEDUP}
    rows = []
    for name, run in legs.items():
        rows.append([name, run.elapsed_at_paper_scale,
                     paper_speedups[name] if paper_speedups[name] else "-",
                     base / run.elapsed_at_paper_scale,
                     run.paper_scale.bottleneck])
    return ExperimentResult(
        experiment="Figure 7: TPC-H Q14 elapsed time (SF-100)",
        headers=["configuration", "elapsed s (SF-100)", "paper speedup",
                 "measured speedup", "bottleneck"],
        rows=rows,
        runs=legs,
    )


# ---------------------------------------------------------------------------
# Table 3 — energy
# ---------------------------------------------------------------------------

def table3_energy(run_scale: float = TPCH_RUN_SCALE) -> ExperimentResult:
    """Q6 energy across SAS HDD / SAS SSD / Smart NSM / Smart PAX."""
    legs = {
        "sas-hdd": run_at_paper_scale(
            make_tpch_db(DeviceKind.HDD, Layout.NSM, run_scale), q6_query(),
            "host", run_scale, paper.TPCH_SCALE_FACTOR, label="sas-hdd",
            device=DeviceKind.HDD, layout=Layout.NSM),
        "sas-ssd": run_at_paper_scale(
            make_tpch_db(DeviceKind.SSD, Layout.NSM, run_scale), q6_query(),
            "host", run_scale, paper.TPCH_SCALE_FACTOR, label="sas-ssd",
            device=DeviceKind.SSD, layout=Layout.NSM),
        "smart-nsm": run_at_paper_scale(
            make_tpch_db(DeviceKind.SMART, Layout.NSM, run_scale), q6_query(),
            "smart", run_scale, paper.TPCH_SCALE_FACTOR, label="smart-nsm",
            layout=Layout.NSM),
        "smart-pax": run_at_paper_scale(
            make_tpch_db(DeviceKind.SMART, Layout.PAX, run_scale), q6_query(),
            "smart", run_scale, paper.TPCH_SCALE_FACTOR, label="smart-pax",
            layout=Layout.PAX),
    }
    rows = []
    for name, run in legs.items():
        energy = run.paper_scale.energy
        rows.append([name, run.elapsed_at_paper_scale,
                     energy.entire_system_kj, energy.io_subsystem_kj])
    pax = legs["smart-pax"].paper_scale.energy
    hdd = legs["sas-hdd"].paper_scale.energy
    ssd = legs["sas-ssd"].paper_scale.energy
    idle = paper.TABLE3_IDLE_POWER_W
    ratio_rows = [
        ["HDD/SmartPAX entire system", paper.TABLE3_HDD_SYSTEM_ENERGY_RATIO,
         hdd.entire_system_kj / pax.entire_system_kj],
        ["HDD/SmartPAX I/O subsystem", paper.TABLE3_HDD_IO_ENERGY_RATIO,
         hdd.io_subsystem_kj / pax.io_subsystem_kj],
        ["SSD/SmartPAX entire system", paper.TABLE3_SSD_SYSTEM_ENERGY_RATIO,
         ssd.entire_system_kj / pax.entire_system_kj],
        ["SSD/SmartPAX I/O subsystem", paper.TABLE3_SSD_IO_ENERGY_RATIO,
         ssd.io_subsystem_kj / pax.io_subsystem_kj],
        ["HDD/SmartPAX over idle", paper.TABLE3_HDD_OVER_IDLE_RATIO,
         hdd.over_idle_j(idle) / pax.over_idle_j(idle)],
        ["SSD/SmartPAX over idle", paper.TABLE3_SSD_OVER_IDLE_RATIO,
         ssd.over_idle_j(idle) / pax.over_idle_j(idle)],
    ]
    result = ExperimentResult(
        experiment="Table 3: energy consumption for TPC-H Q6 (SF-100)",
        headers=["configuration", "elapsed s", "entire system kJ",
                 "I/O subsystem kJ"],
        rows=rows,
        runs=legs,
    )
    result.notes = format_table("Table 3 ratios (vs. Smart SSD PAX)",
                                ["ratio", "paper", "measured"], ratio_rows)
    return result


# ---------------------------------------------------------------------------
# SIGMOD'13 sweeps
# ---------------------------------------------------------------------------

def sigmod_scan_selectivity(
        run_scale: float = SYNTHETIC_RUN_SCALE,
        selectivities: Sequence[float] = (0.01, 0.1, 1, 10, 100),
        aggregate: bool = False) -> ExperimentResult:
    """Single-table scan speedup vs. selectivity (with/without aggregation)."""
    from repro.workloads import synthetic_scan_query
    rows = []
    runs: dict[str, MeasuredRun] = {}
    for selectivity in selectivities:
        query = synthetic_scan_query(selectivity, aggregate=aggregate)
        host = run_at_paper_scale(
            make_synthetic_db(DeviceKind.SSD, Layout.PAX, run_scale), query,
            "host", run_scale, 1.0, label=f"host-{selectivity}",
            device=DeviceKind.SSD)
        smart = run_at_paper_scale(
            make_synthetic_db(DeviceKind.SMART, Layout.PAX, run_scale),
            query, "smart", run_scale, 1.0, label=f"smart-{selectivity}")
        runs[f"host-{selectivity}"] = host
        runs[f"smart-{selectivity}"] = smart
        rows.append([f"{selectivity:g}%", host.elapsed_at_paper_scale,
                     smart.elapsed_at_paper_scale,
                     host.elapsed_at_paper_scale
                     / smart.elapsed_at_paper_scale])
    mode = "with aggregation" if aggregate else "returning rows"
    return ExperimentResult(
        experiment=(f"SIGMOD'13 scan sweep ({mode}): elapsed vs. "
                    "selectivity (S 400M rows)"),
        headers=["selectivity", "SAS SSD s", "Smart SSD (PAX) s",
                 "measured speedup"],
        rows=rows,
        runs=runs,
        notes="paper shape: speedup falls as selectivity (data returned) "
              "grows; aggregation keeps the device path cheap at all "
              "selectivities",
    )


def sigmod_tuple_width(
        widths: Sequence[int] = (8, 16, 32, 64),
        run_rows: int = 40_000) -> ExperimentResult:
    """Smart SSD benefit vs. tuple width (tuples per page)."""
    import numpy as np

    from repro.engine import AggSpec, Col, Compare, Const, Query
    from repro.host.db import Database
    from repro.storage import Column, Int32Type, Schema

    rows_out = []
    runs: dict[str, MeasuredRun] = {}
    for width in widths:
        schema = Schema([Column(f"c{i}", Int32Type())
                         for i in range(1, width + 1)])
        rng = np.random.default_rng(width)
        data = np.empty(run_rows, dtype=schema.numpy_dtype())
        for i in range(1, width + 1):
            data[f"c{i}"] = rng.integers(0, 100, run_rows)
        query = Query(
            name=f"width-{width}",
            table="wide",
            predicate=Compare(Col("c1"), "<", Const(1)),
            aggregates=(AggSpec("sum", Col("c2"), "s"),),
        )

        def leg(kind: DeviceKind, placement: str) -> MeasuredRun:
            db = Database()
            if kind is DeviceKind.SSD:
                db.create_ssd()
            else:
                db.create_smart_ssd()
            db.create_table("wide", schema, Layout.PAX, data, kind.value)
            return run_at_paper_scale(db, query, placement, 1.0, 1000.0,
                                      label=f"{kind.value}-w{width}",
                                      device=kind)

        host = leg(DeviceKind.SSD, "host")
        smart = leg(DeviceKind.SMART, "smart")
        runs[f"host-{width}"] = host
        runs[f"smart-{width}"] = smart
        from repro.storage.layout import tuples_per_page
        rows_out.append([width, tuples_per_page(Layout.PAX, schema),
                         host.elapsed_at_paper_scale,
                         smart.elapsed_at_paper_scale,
                         host.elapsed_at_paper_scale
                         / smart.elapsed_at_paper_scale])
    return ExperimentResult(
        experiment="SIGMOD'13 tuple-width sweep: Smart SSD benefit vs. "
                   "tuples per page",
        headers=["int columns", "tuples/page", "SAS SSD s",
                 "Smart SSD s", "measured speedup"],
        rows=rows_out,
        runs=runs,
        notes="paper shape: fewer tuples per page (wider tuples) means "
              "less device CPU per page, pushing the Smart SSD toward its "
              "bandwidth-bound ceiling",
    )
